/**
 * @file
 * PlatformSpec -- a declarative description of one platform
 * instance -- and the PlatformRegistry that turns specs into live
 * Platform objects.
 *
 * A spec is what sweep grids, figures, and the CLI traffic in: a
 * type-erased config handle plus kind tag, display name,
 * network-variant choice, and an optional batch override. The
 * registry maps each kind to a builder and a CLI parser, so
 * `--platform eyeriss`, `--platform gpu:titan-xp-int8` and a
 * heterogeneous sweep grid all construct platforms through the same
 * door. Core knows no backend by name: every in-tree kind registers
 * itself through the same add() an out-of-tree backend would use, so
 * adding a machine means writing one config struct, one Platform
 * subclass, and one registration unit -- no core-header edits.
 */

#ifndef BITFUSION_CORE_PLATFORM_REGISTRY_H
#define BITFUSION_CORE_PLATFORM_REGISTRY_H

#include <functional>
#include <memory>
#include <string>
#include <typeinfo>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/core/platform.h"

namespace bitfusion {

/**
 * Type-erased, immutable platform configuration with value
 * semantics: copies clone, equality compares the held structs
 * field-for-field, and the handle exposes the four facts the
 * generic machinery needs without knowing the concrete type --
 * default batch, a human description, the config's contribution to
 * the compile-cache key, and validation.
 *
 * A backend wraps its plain config struct with a small table of
 * function pointers (Ops); no inheritance or member boilerplate is
 * required on the struct itself.
 */
class PlatformConfig
{
  public:
    /**
     * The per-type hook table. `equals` and `describe` are
     * mandatory; `batch` defaults to 0 (no config-default batch),
     * `compileKey` to "" (the backend has no compile step), and
     * `validate` to a no-op.
     */
    template <typename T> struct Ops
    {
        /** Default batch the config runs at (0 = none). */
        unsigned (*batch)(const T &) = nullptr;
        /** Field-for-field equality; drives serving-class dedup. */
        bool (*equals)(const T &, const T &) = nullptr;
        /** One-line human summary of the configuration. */
        std::string (*describe)(const T &) = nullptr;
        /**
         * Contribution to the artifact-cache key; must match the
         * built Platform's compileKey(). Empty = no compile step.
         */
        std::string (*compileKey)(const T &) = nullptr;
        /** Fatal-check the configuration (sweep-grid entry point). */
        void (*validate)(const T &) = nullptr;
    };

    PlatformConfig() = default;
    PlatformConfig(PlatformConfig &&) = default;
    PlatformConfig &operator=(PlatformConfig &&) = default;

    PlatformConfig(const PlatformConfig &other)
        : impl_(other.impl_ ? other.impl_->clone() : nullptr)
    {
    }

    PlatformConfig &
    operator=(const PlatformConfig &other)
    {
        if (this != &other)
            impl_ = other.impl_ ? other.impl_->clone() : nullptr;
        return *this;
    }

    /** Wrap a config struct together with its hook table. */
    template <typename T>
    static PlatformConfig
    wrap(T value, Ops<T> ops)
    {
        BF_ASSERT(ops.equals != nullptr && ops.describe != nullptr,
                  "PlatformConfig::Ops needs equals and describe");
        PlatformConfig config;
        config.impl_ =
            std::make_unique<Model<T>>(std::move(value), ops);
        return config;
    }

    /** True when no config has been wrapped. */
    bool empty() const { return impl_ == nullptr; }

    /** The held struct, or nullptr on a type mismatch. */
    template <typename T>
    const T *
    get_if() const
    {
        if (impl_ == nullptr || impl_->type() != typeid(T))
            return nullptr;
        return static_cast<const T *>(impl_->raw());
    }

    /** The held struct; fatal on a type mismatch. */
    template <typename T>
    const T &
    as() const
    {
        const T *value = get_if<T>();
        if (value == nullptr) {
            BF_FATAL("platform config holds ",
                     impl_ ? impl_->type().name() : "nothing",
                     ", not ", typeid(T).name());
        }
        return *value;
    }

    /** Config-default batch (0 when empty or the hook is unset). */
    unsigned batch() const { return impl_ ? impl_->batch() : 0; }

    /** One-line human summary ("(empty)" when unset). */
    std::string
    describe() const
    {
        return impl_ ? impl_->describe() : "(empty)";
    }

    /** Compile-cache key contribution ("" = no compile step). */
    std::string
    compileKey() const
    {
        return impl_ ? impl_->compileKey() : std::string{};
    }

    /** Fatal-check the held config; fatal when empty. */
    void
    validate() const
    {
        if (impl_ == nullptr)
            BF_FATAL("platform spec holds no configuration");
        impl_->validate();
    }

    /** Same held type and equal fields (two empties are equal). */
    bool
    operator==(const PlatformConfig &other) const
    {
        if (impl_ == nullptr || other.impl_ == nullptr)
            return impl_ == other.impl_;
        return impl_->type() == other.impl_->type() &&
               impl_->equals(*other.impl_);
    }

    bool
    operator!=(const PlatformConfig &other) const
    {
        return !(*this == other);
    }

  private:
    struct Concept
    {
        virtual ~Concept() = default;
        virtual std::unique_ptr<const Concept> clone() const = 0;
        virtual unsigned batch() const = 0;
        virtual bool equals(const Concept &other) const = 0;
        virtual std::string describe() const = 0;
        virtual std::string compileKey() const = 0;
        virtual void validate() const = 0;
        virtual const std::type_info &type() const = 0;
        virtual const void *raw() const = 0;
    };

    template <typename T> struct Model : Concept
    {
        Model(T value, Ops<T> ops)
            : value(std::move(value)), ops(ops)
        {
        }

        std::unique_ptr<const Concept>
        clone() const override
        {
            return std::make_unique<Model<T>>(value, ops);
        }

        unsigned
        batch() const override
        {
            return ops.batch ? ops.batch(value) : 0;
        }

        bool
        equals(const Concept &other) const override
        {
            // The caller checked type() equality already.
            return ops.equals(
                value, *static_cast<const T *>(other.raw()));
        }

        std::string describe() const override
        {
            return ops.describe(value);
        }

        std::string
        compileKey() const override
        {
            return ops.compileKey ? ops.compileKey(value)
                                  : std::string{};
        }

        void
        validate() const override
        {
            if (ops.validate)
                ops.validate(value);
        }

        const std::type_info &type() const override
        {
            return typeid(T);
        }

        const void *raw() const override { return &value; }

        T value;
        Ops<T> ops;
    };

    std::unique_ptr<const Concept> impl_;
};

/**
 * Declarative description of one platform instance: which backend
 * kind, with which configuration, under which display name, running
 * which network variant, at which batch size.
 */
struct PlatformSpec
{
    /** Display name; must be unique within a sweep grid. */
    std::string name;
    /** Registry kind id ("bitfusion", "eyeriss", "gpu", ...). */
    std::string kind;
    /** Type-erased backend configuration. */
    PlatformConfig config;
    /** Run the quantized model variant (else the regular one). */
    bool runsQuantized = true;
    /** Batch override applied at build time; 0 keeps the config's. */
    unsigned batch = 0;

    /** Batch the built platform runs at (override or config). */
    unsigned
    effectiveBatch() const
    {
        return batch != 0 ? batch : config.batch();
    }
};

/**
 * Builders and CLI parsers for every platform kind. The in-tree
 * backends are pre-registered in builtin() through the same add()
 * door an out-of-tree backend uses at runtime.
 */
class PlatformRegistry
{
  public:
    struct Entry
    {
        /** Kind id (the token before ':' in --platform). */
        std::string kind;
        /** Accepted variants after ':' ("(no variants)" if none). */
        std::string variants;
        /** One-line description of the backend. */
        std::string help;
        /** Parse the (possibly empty) variant into a spec. */
        std::function<PlatformSpec(const std::string &variant)> parse;
        /** Build a live platform from a spec of this kind. */
        std::function<std::unique_ptr<Platform>(const PlatformSpec &)>
            build;
    };

    /** The registry holding the built-in platform kinds. */
    static PlatformRegistry &builtin();

    /** Register a kind; fatal on a duplicate id. */
    void add(Entry entry);

    /** Look up a kind; nullptr when unknown. */
    const Entry *find(const std::string &kind) const;

    /** Build a platform from a spec (dispatches on spec.kind). */
    std::unique_ptr<Platform> build(const PlatformSpec &spec) const;

    /**
     * Parse a CLI token of the form "kind" or "kind:variant" (e.g.
     * "eyeriss", "gpu:titan-xp-int8", "bitfusion:16nm"). Fatal on an
     * unknown kind or variant.
     */
    PlatformSpec parse(const std::string &token) const;

    /**
     * Parse a comma-separated fleet of platform tokens (e.g.
     * "bitfusion,bitfusion,eyeriss,gpu:titan-xp-int8") into one spec
     * per replica. Fatal on an empty list, an empty element, or any
     * invalid token.
     */
    std::vector<PlatformSpec> parseFleet(const std::string &csv) const;

    const std::vector<Entry> &entries() const { return entries_; }

  private:
    std::vector<Entry> entries_;
};

/**
 * Canonical variant spelling: lowercase with '-'/'_' stripped, so
 * "TitanXp-INT8" matches "titanxpint8". Registration units use this
 * to make their variant tokens spelling-insensitive.
 */
std::string canonicalVariant(const std::string &s);

} // namespace bitfusion

#endif // BITFUSION_CORE_PLATFORM_REGISTRY_H
