/**
 * @file
 * PlatformSpec -- a declarative, tagged description of one platform
 * instance -- and the PlatformRegistry that turns specs into live
 * Platform objects.
 *
 * A spec is what sweep grids, figures, and the CLI traffic in: a
 * config variant (one alternative per backend kind) plus display
 * name, network-variant choice, and an optional batch override.
 * The registry maps each variant alternative to a builder and a
 * CLI parser, so `--platform eyeriss`, `--platform gpu:titan-xp-int8`
 * and a heterogeneous sweep grid all construct platforms through the
 * same door. Adding a backend = one config struct, one Platform
 * subclass, one variant alternative, one registry entry.
 */

#ifndef BITFUSION_CORE_PLATFORM_REGISTRY_H
#define BITFUSION_CORE_PLATFORM_REGISTRY_H

#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/baselines/eyeriss.h"
#include "src/baselines/gpu.h"
#include "src/baselines/stripes.h"
#include "src/core/platform.h"
#include "src/sim/config.h"

namespace bitfusion {

/**
 * Declarative description of one platform instance: which backend,
 * with which configuration, under which display name, running which
 * network variant, at which batch size.
 */
struct PlatformSpec
{
    /** One alternative per registered backend kind. */
    using Config = std::variant<AcceleratorConfig, EyerissConfig,
                                StripesConfig, GpuSpec>;

    /** Display name; must be unique within a sweep grid. */
    std::string name;
    Config config;
    /** Run the quantized model variant (else the regular one). */
    bool runsQuantized = true;
    /** Batch override applied at build time; 0 keeps the config's. */
    unsigned batch = 0;

    /** Bit Fusion platform; name defaults to the config's name. */
    static PlatformSpec bitfusion(AcceleratorConfig cfg,
                                  std::string name = "");
    /** Eyeriss baseline (16-bit, runs the regular-width model). */
    static PlatformSpec eyeriss(EyerissConfig cfg = {});
    /** Stripes baseline (runs the quantized model, per Fig. 18). */
    static PlatformSpec stripes(StripesConfig cfg = {});
    /** GPU baseline (runs the regular-width model, per §V-A). */
    static PlatformSpec gpu(GpuSpec spec);

    /** Registry kind of the held config alternative. */
    std::string kind() const;
    /** Batch the built platform runs at (override or config). */
    unsigned effectiveBatch() const;
};

/**
 * Builders and CLI parsers for every platform kind. The four paper
 * platforms are pre-registered in builtin(); out-of-tree backends
 * can add() their own entry.
 */
class PlatformRegistry
{
  public:
    struct Entry
    {
        /** Kind id (the token before ':' in --platform). */
        std::string kind;
        /** One-line help: accepted variants after ':'. */
        std::string help;
        /** Parse the (possibly empty) variant into a spec. */
        std::function<PlatformSpec(const std::string &variant)> parse;
        /** Build a live platform from a spec of this kind. */
        std::function<std::unique_ptr<Platform>(const PlatformSpec &)>
            build;
    };

    /** The registry holding the built-in platform kinds. */
    static PlatformRegistry &builtin();

    /** Register a kind; fatal on a duplicate id. */
    void add(Entry entry);

    /** Look up a kind; nullptr when unknown. */
    const Entry *find(const std::string &kind) const;

    /** Build a platform from a spec (dispatches on the variant). */
    std::unique_ptr<Platform> build(const PlatformSpec &spec) const;

    /**
     * Parse a CLI token of the form "kind" or "kind:variant" (e.g.
     * "eyeriss", "gpu:titan-xp-int8", "bitfusion:16nm"). Fatal on an
     * unknown kind or variant.
     */
    PlatformSpec parse(const std::string &token) const;

    /**
     * Parse a comma-separated fleet of platform tokens (e.g.
     * "bitfusion,bitfusion,eyeriss,gpu:titan-xp-int8") into one spec
     * per replica. Fatal on an empty list, an empty element, or any
     * invalid token.
     */
    std::vector<PlatformSpec> parseFleet(const std::string &csv) const;

    const std::vector<Entry> &entries() const { return entries_; }

  private:
    std::vector<Entry> entries_;
};

} // namespace bitfusion

#endif // BITFUSION_CORE_PLATFORM_REGISTRY_H
