#include "src/core/platform_registry.h"

#include <cctype>
#include <utility>

#include "src/common/logging.h"
#include "src/sim/simulator.h"

namespace bitfusion {

namespace {

/** Lowercase with '-'/'_' stripped, so "TitanXp-INT8" matches
 *  "titan-xp-int8". */
std::string
canon(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '-' || c == '_')
            continue;
        out.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

PlatformSpec
parseBitfusion(const std::string &variant)
{
    const std::string v = canon(variant);
    if (v.empty() || v == "45nm" || v == "eyerissmatched")
        return PlatformSpec::bitfusion(
            AcceleratorConfig::eyerissMatched45());
    if (v == "16nm" || v == "gpuscale")
        return PlatformSpec::bitfusion(AcceleratorConfig::gpuScale16());
    if (v == "stripestile")
        return PlatformSpec::bitfusion(
            AcceleratorConfig::stripesTileMatched45());
    BF_FATAL("unknown bitfusion variant '", variant,
             "' (try 45nm, 16nm, stripes-tile)");
}

PlatformSpec
parseGpu(const std::string &variant)
{
    const std::string v = canon(variant);
    if (v == "tegrax2fp32" || v == "tegrax2")
        return PlatformSpec::gpu(GpuSpec::tegraX2Fp32());
    if (v == "titanxpfp32")
        return PlatformSpec::gpu(GpuSpec::titanXpFp32());
    if (v == "titanxpint8")
        return PlatformSpec::gpu(GpuSpec::titanXpInt8());
    BF_FATAL("unknown gpu variant '", variant,
             "' (try tegra-x2-fp32, titan-xp-fp32, titan-xp-int8)");
}

} // namespace

PlatformSpec
PlatformSpec::bitfusion(AcceleratorConfig cfg, std::string name)
{
    PlatformSpec spec;
    spec.name = name.empty() ? cfg.name : std::move(name);
    spec.config = std::move(cfg);
    spec.runsQuantized = true;
    return spec;
}

PlatformSpec
PlatformSpec::eyeriss(EyerissConfig cfg)
{
    PlatformSpec spec;
    spec.name = "eyeriss";
    spec.config = cfg;
    spec.runsQuantized = false;
    return spec;
}

PlatformSpec
PlatformSpec::stripes(StripesConfig cfg)
{
    PlatformSpec spec;
    spec.name = "stripes";
    spec.config = cfg;
    spec.runsQuantized = true;
    return spec;
}

PlatformSpec
PlatformSpec::gpu(GpuSpec gpuSpec)
{
    PlatformSpec spec;
    spec.name = gpuSpec.name;
    spec.config = std::move(gpuSpec);
    spec.runsQuantized = false;
    return spec;
}

std::string
PlatformSpec::kind() const
{
    struct Visitor
    {
        std::string operator()(const AcceleratorConfig &) const
        {
            return "bitfusion";
        }
        std::string operator()(const EyerissConfig &) const
        {
            return "eyeriss";
        }
        std::string operator()(const StripesConfig &) const
        {
            return "stripes";
        }
        std::string operator()(const GpuSpec &) const { return "gpu"; }
    };
    return std::visit(Visitor{}, config);
}

unsigned
PlatformSpec::effectiveBatch() const
{
    if (batch != 0)
        return batch;
    struct Visitor
    {
        unsigned operator()(const AcceleratorConfig &c) const
        {
            return c.batch;
        }
        unsigned operator()(const EyerissConfig &c) const
        {
            return c.batch;
        }
        unsigned operator()(const StripesConfig &c) const
        {
            return c.batch;
        }
        unsigned operator()(const GpuSpec &) const
        {
            return kGpuDefaultBatch; // GpuSpec carries no batch field.
        }
    };
    return std::visit(Visitor{}, config);
}

PlatformRegistry &
PlatformRegistry::builtin()
{
    static PlatformRegistry registry = [] {
        PlatformRegistry r;
        r.add({"bitfusion", "45nm (default) | 16nm | stripes-tile",
               parseBitfusion,
               [](const PlatformSpec &spec) -> std::unique_ptr<Platform> {
                   AcceleratorConfig cfg =
                       std::get<AcceleratorConfig>(spec.config);
                   if (spec.batch != 0)
                       cfg.batch = spec.batch;
                   return std::make_unique<Simulator>(cfg);
               }});
        r.add({"eyeriss", "(no variants)",
               [](const std::string &variant) {
                   if (!variant.empty())
                       BF_FATAL("eyeriss takes no variant, got '",
                                variant, "'");
                   return PlatformSpec::eyeriss();
               },
               [](const PlatformSpec &spec) -> std::unique_ptr<Platform> {
                   EyerissConfig cfg =
                       std::get<EyerissConfig>(spec.config);
                   if (spec.batch != 0)
                       cfg.batch = spec.batch;
                   return std::make_unique<EyerissModel>(cfg);
               }});
        r.add({"stripes", "(no variants)",
               [](const std::string &variant) {
                   if (!variant.empty())
                       BF_FATAL("stripes takes no variant, got '",
                                variant, "'");
                   return PlatformSpec::stripes();
               },
               [](const PlatformSpec &spec) -> std::unique_ptr<Platform> {
                   StripesConfig cfg =
                       std::get<StripesConfig>(spec.config);
                   if (spec.batch != 0)
                       cfg.batch = spec.batch;
                   return std::make_unique<StripesModel>(cfg);
               }});
        r.add({"gpu", "tegra-x2-fp32 | titan-xp-fp32 | titan-xp-int8",
               parseGpu,
               [](const PlatformSpec &spec) -> std::unique_ptr<Platform> {
                   return std::make_unique<GpuModel>(
                       std::get<GpuSpec>(spec.config),
                       spec.effectiveBatch());
               }});
        return r;
    }();
    return registry;
}

void
PlatformRegistry::add(Entry entry)
{
    if (find(entry.kind) != nullptr)
        BF_FATAL("duplicate platform kind '", entry.kind, "'");
    entries_.push_back(std::move(entry));
}

const PlatformRegistry::Entry *
PlatformRegistry::find(const std::string &kind) const
{
    for (const auto &entry : entries_) {
        if (entry.kind == kind)
            return &entry;
    }
    return nullptr;
}

std::unique_ptr<Platform>
PlatformRegistry::build(const PlatformSpec &spec) const
{
    const Entry *entry = find(spec.kind());
    if (entry == nullptr)
        BF_FATAL("no registered platform kind '", spec.kind(), "'");
    return entry->build(spec);
}

PlatformSpec
PlatformRegistry::parse(const std::string &token) const
{
    const auto colon = token.find(':');
    const std::string kind = token.substr(0, colon);
    const std::string variant =
        colon == std::string::npos ? "" : token.substr(colon + 1);
    const Entry *entry = find(kind);
    if (entry == nullptr) {
        std::string known;
        for (const auto &e : entries_)
            known += (known.empty() ? "" : ", ") + e.kind;
        BF_FATAL("unknown platform '", kind, "' (known: ", known, ")");
    }
    return entry->parse(variant);
}

std::vector<PlatformSpec>
PlatformRegistry::parseFleet(const std::string &csv) const
{
    if (csv.empty())
        BF_FATAL("fleet list must name at least one platform");
    std::vector<PlatformSpec> fleet;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        const std::string token = csv.substr(start, end - start);
        if (token.empty()) {
            BF_FATAL("fleet list '", csv,
                     "' has an empty element (expected "
                     "KIND[:VARIANT],KIND[:VARIANT],...)");
        }
        fleet.push_back(parse(token));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return fleet;
}

} // namespace bitfusion
