#include "src/core/platform_registry.h"

#include <cctype>
#include <utility>

#include "src/common/logging.h"

namespace bitfusion {

// Each in-tree backend implements one of these in its own
// registration unit and registers itself through the same add() an
// out-of-tree backend calls at runtime. Adding a machine in-tree is
// one forward declaration plus one call here; core headers never
// name a backend type.
void registerBitFusionPlatform(PlatformRegistry &r);
void registerEyerissPlatform(PlatformRegistry &r);
void registerStripesPlatform(PlatformRegistry &r);
void registerGpuPlatform(PlatformRegistry &r);
void registerMxuPlatform(PlatformRegistry &r);
void registerDianNaoPlatform(PlatformRegistry &r);

std::string
canonicalVariant(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '-' || c == '_')
            continue;
        out.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

PlatformRegistry &
PlatformRegistry::builtin()
{
    static PlatformRegistry registry = [] {
        PlatformRegistry r;
        registerBitFusionPlatform(r);
        registerEyerissPlatform(r);
        registerStripesPlatform(r);
        registerGpuPlatform(r);
        registerMxuPlatform(r);
        registerDianNaoPlatform(r);
        return r;
    }();
    return registry;
}

void
PlatformRegistry::add(Entry entry)
{
    if (find(entry.kind) != nullptr)
        BF_FATAL("duplicate platform kind '", entry.kind, "'");
    entries_.push_back(std::move(entry));
}

const PlatformRegistry::Entry *
PlatformRegistry::find(const std::string &kind) const
{
    for (const auto &entry : entries_) {
        if (entry.kind == kind)
            return &entry;
    }
    return nullptr;
}

std::unique_ptr<Platform>
PlatformRegistry::build(const PlatformSpec &spec) const
{
    const Entry *entry = find(spec.kind);
    if (entry == nullptr)
        BF_FATAL("no registered platform kind '", spec.kind, "'");
    return entry->build(spec);
}

PlatformSpec
PlatformRegistry::parse(const std::string &token) const
{
    const auto colon = token.find(':');
    const std::string kind = token.substr(0, colon);
    const std::string variant =
        colon == std::string::npos ? "" : token.substr(colon + 1);
    const Entry *entry = find(kind);
    if (entry == nullptr) {
        std::string known;
        for (const auto &e : entries_)
            known += (known.empty() ? "" : ", ") + e.kind;
        BF_FATAL("unknown platform '", kind, "' (known: ", known, ")");
    }
    return entry->parse(variant);
}

std::vector<PlatformSpec>
PlatformRegistry::parseFleet(const std::string &csv) const
{
    if (csv.empty())
        BF_FATAL("fleet list must name at least one platform");
    std::vector<PlatformSpec> fleet;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        const std::string token = csv.substr(start, end - start);
        if (token.empty()) {
            BF_FATAL("fleet list '", csv,
                     "' has an empty element (expected "
                     "KIND[:VARIANT],KIND[:VARIANT],...)");
        }
        fleet.push_back(parse(token));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return fleet;
}

} // namespace bitfusion
