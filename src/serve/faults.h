/**
 * @file
 * Deterministic fault injection for the serving fleet.
 *
 * A FaultSpec describes when replicas are down on the engine's
 * virtual clock: explicit per-replica outages (the CLI's
 * --fail-replica ID@T[:for=D]), correlated rack outages that take a
 * contiguous replica group down together (--fail-rack with
 * --rack-size), and a seeded background failure process that gives
 * every replica independent exponential MTBF/MTTR renewal cycles
 * through src/common/prng.h. A FaultTimeline materializes the spec
 * for one run and answers point queries (is replica r up at t, when
 * does it recover, does it fail inside this batch's window).
 *
 * Everything is deterministic: explicit outages are data, and the
 * seeded process derives one independent SplitMix64 stream per
 * replica at construction and extends each stream lazily in virtual
 * time order, so answers never depend on query order, thread count,
 * or wall clock. The RetryPolicy alongside governs what the engine
 * does with requests whose batch a dying replica took down: bounded
 * re-dispatch with exponential backoff and seeded jitter, a global
 * retry budget, and optional hedged duplicate dispatch with
 * first-completion-wins accounting (docs/serving.md, "Failure
 * model").
 *
 * All knobs are dormant by default: a default FaultSpec/RetryPolicy
 * leaves the serving engine's behavior and report bytes untouched.
 */

#ifndef BITFUSION_SERVE_FAULTS_H
#define BITFUSION_SERVE_FAULTS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/prng.h"

namespace bitfusion {
namespace serve {

/** One explicit outage for a replica (or a rack of replicas). */
struct FaultEvent
{
    /** Replica index (FaultSpec.replicaEvents) or rack index
     *  (FaultSpec.rackEvents; rack k owns replicas
     *  [k*rackSize, (k+1)*rackSize)). */
    std::size_t target = 0;
    /** Virtual time the outage starts. */
    double atUs = 0.0;
    /** Outage duration; 0 = the target never recovers. */
    double forUs = 0.0;
};

/**
 * Parse a "ID@T[:for=D]" outage argument (the --fail-replica /
 * --fail-rack value): target ID goes down at virtual time T, for D
 * microseconds (omitted = permanently). Fatal on malformed input;
 * @p flag names the offending option in the error.
 */
FaultEvent parseFaultEvent(const std::string &text, const char *flag);

/** When replicas are down; inactive by default. */
struct FaultSpec
{
    /** Seed of the per-replica background failure streams (and the
     *  retry jitter stream); equal seeds reproduce a run exactly. */
    std::uint64_t seed = 1;
    /** Mean virtual time between seeded failures per replica;
     *  0 = no seeded failures. Set with mttrUs. */
    double mtbfUs = 0.0;
    /** Mean virtual repair time of a seeded failure. */
    double mttrUs = 0.0;
    /** Explicit per-replica outages. */
    std::vector<FaultEvent> replicaEvents;
    /** Replicas per rack; 0 = no rack grouping. */
    std::size_t rackSize = 0;
    /** Correlated outages taking a whole rack down together. */
    std::vector<FaultEvent> rackEvents;

    /** True when any fault source is configured. */
    bool active() const;
    /** Fatal-check the spec against the fleet size. */
    void validate(std::size_t replicaCount) const;
};

/** What to do with requests whose batch a fault destroyed. */
struct RetryPolicy
{
    /** Total dispatch attempts a request may consume (its first
     *  dispatch counts); 1 = a lost request is abandoned. */
    unsigned maxAttempts = 1;
    /** Backoff before retry k re-enters the queue:
     *  backoffBaseUs * 2^(k-1), plus jitter; 0 = immediate. */
    double backoffBaseUs = 0.0;
    /** Seeded uniform jitter fraction in [0, 1]: each backoff is
     *  scaled by (1 + jitterFrac * u), u ~ U[0, 1). */
    double jitterFrac = 0.0;
    /** Global cap on retries issued per run; 0 = unlimited. A
     *  request denied by the budget is abandoned. */
    std::size_t retryBudget = 0;
    /** Duplicate a still-running batch onto a second replica after
     *  this fixed delay; 0 = no fixed-delay hedging. */
    double hedgeDelayUs = 0.0;
    /** Hedge after multiplier * (running p99 of completed batch
     *  latencies) instead of a fixed delay; 0 = off. Mutually
     *  exclusive with hedgeDelayUs. */
    double hedgeP99Multiplier = 0.0;

    /** True when retries are possible. */
    bool retriesEnabled() const { return maxAttempts > 1; }
    /** True when hedged re-dispatch is configured. */
    bool hedgingEnabled() const
    {
        return hedgeDelayUs > 0.0 || hedgeP99Multiplier > 0.0;
    }
    /** True when any knob deviates from the dormant default. */
    bool active() const;
    /** Fatal-check knob pairings and ranges. */
    void validate() const;
};

/**
 * The materialized down-time oracle of one serving run: per replica,
 * the union of its explicit outages (replica + rack events) and its
 * lazily generated seeded failure renewal process (up for
 * Exp(mtbfUs), down for Exp(mttrUs), starting up at time 0).
 *
 * Queries are not const because they may extend a replica's seeded
 * stream, but every answer is a pure function of the spec: each
 * replica's stream is generated in virtual-time order from its own
 * Prng, independent of the order queries arrive in.
 */
class FaultTimeline
{
  public:
    /** Half-open down interval [startUs, endUs). */
    struct Interval
    {
        double startUs = 0.0;
        double endUs = 0.0;
    };

    FaultTimeline(const FaultSpec &spec, std::size_t replicaCount);

    std::size_t replicaCount() const { return lanes_.size(); }

    /** True when replica @p r is up at time @p t. */
    bool upAt(std::size_t r, double t);

    /** Earliest time >= @p t at which replica @p r is up (chains
     *  across overlapping outages; +inf when it never recovers). */
    double upAfter(std::size_t r, double t);

    /**
     * First outage onset of replica @p r strictly inside
     * (@p t, @p limit); +inf when the replica stays up. The engine
     * asks this for every in-flight batch: an onset before the
     * batch's finish time destroys it.
     */
    double nextDownWithin(std::size_t r, double t, double limit);

    /** True when any replica is down at @p t. */
    bool anyDownAt(double t);

    /** Total down time of replica @p r within [0, @p horizon]. */
    double downUsWithin(std::size_t r, double horizon);

    /** Latest recovery (outage end) at or before @p horizon over
     *  the whole fleet; 0 when no outage ended by then. */
    double lastRecoveryBefore(double horizon);

  private:
    /** One replica's outage state. */
    struct Lane
    {
        explicit Lane(std::uint64_t seed) : prng(seed) {}
        /** Explicit outages, merged and sorted by start. */
        std::vector<Interval> scheduled;
        /** Seeded outages generated so far, sorted by start. */
        std::vector<Interval> seeded;
        Prng prng;
        /** Renewal-process position (end of the last seeded
         *  outage). */
        double clockUs = 0.0;
        /** The seeded layout is fully decided on [0, knownUs]. */
        double knownUs = 0.0;
    };

    /** Generate lane outages until its layout covers @p t. */
    void extend(Lane &lane, double t);

    FaultSpec spec_;
    std::vector<Lane> lanes_;
};

} // namespace serve
} // namespace bitfusion

#endif // BITFUSION_SERVE_FAULTS_H
