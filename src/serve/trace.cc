#include "src/serve/trace.h"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/prng.h"
#include "src/dnn/model_zoo.h"

namespace bitfusion {
namespace serve {

namespace {

std::vector<std::string>
defaultNetworks()
{
    std::vector<std::string> names;
    for (const auto &bench : zoo::all())
        names.push_back(bench.name);
    return names;
}

} // namespace

std::vector<InferenceRequest>
syntheticTrace(const TraceSpec &spec)
{
    if (!std::isfinite(spec.meanGapUs) || spec.meanGapUs <= 0.0)
        BF_FATAL("trace mean inter-arrival gap must be a positive "
                 "finite value, got ",
                 spec.meanGapUs);
    if (spec.maxSamples == 0)
        BF_FATAL("trace max request samples must be nonzero");
    const std::vector<std::string> networks =
        spec.networks.empty() ? defaultNetworks() : spec.networks;

    Prng prng(spec.seed);
    std::vector<InferenceRequest> trace;
    trace.reserve(spec.requests);
    double clock = 0.0;
    for (std::size_t i = 0; i < spec.requests; ++i) {
        clock += prng.nextExponential(spec.meanGapUs);
        InferenceRequest req;
        req.id = i;
        req.network = networks[prng.below(networks.size())];
        req.samples =
            1 + static_cast<unsigned>(prng.below(spec.maxSamples));
        req.arrivalUs = clock;
        if (spec.deadlineSlackUs > 0.0)
            req.deadlineUs = clock + spec.deadlineSlackUs;
        trace.push_back(std::move(req));
    }
    return trace;
}

std::string
formatTrace(const std::vector<InferenceRequest> &trace)
{
    std::ostringstream out;
    out << "# arrival_us network samples [deadline_us]\n";
    out << std::fixed << std::setprecision(6);
    for (const auto &req : trace) {
        out << req.arrivalUs << ' ' << req.network << ' '
            << req.samples;
        if (req.deadlineUs > 0.0)
            out << ' ' << req.deadlineUs;
        out << '\n';
    }
    return out.str();
}

std::vector<InferenceRequest>
parseTrace(const std::string &text)
{
    std::vector<InferenceRequest> trace;
    std::istringstream in(text);
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#')
            continue;

        std::istringstream fields(line);
        InferenceRequest req;
        req.id = trace.size();
        long long samples = 0;
        if (!(fields >> req.arrivalUs >> req.network >> samples))
            BF_FATAL("trace line ", lineNo, " is malformed: '", line,
                     "'");
        if (!std::isfinite(req.arrivalUs) || req.arrivalUs < 0.0)
            BF_FATAL("trace line ", lineNo, " has a bad arrival time ",
                     req.arrivalUs);
        if (samples <= 0 ||
            samples > std::numeric_limits<unsigned>::max())
            BF_FATAL("trace line ", lineNo, " has a bad sample count ",
                     samples);
        req.samples = static_cast<unsigned>(samples);
        // The deadline column is optional but must parse cleanly if
        // present (a string extraction, so a malformed number cannot
        // put the stream into a fail state that hides it).
        std::string fourth;
        if (fields >> fourth) {
            char *end = nullptr;
            const double deadline = std::strtod(fourth.c_str(), &end);
            if (end == fourth.c_str() || *end != '\0' ||
                !std::isfinite(deadline) || deadline < 0.0) {
                BF_FATAL("trace line ", lineNo,
                         " has a malformed deadline '", fourth, "'");
            }
            req.deadlineUs = deadline;
            std::string extra;
            if (fields >> extra)
                BF_FATAL("trace line ", lineNo, " has trailing '",
                         extra, "'");
        }
        if (!trace.empty() && req.arrivalUs < trace.back().arrivalUs)
            BF_FATAL("trace line ", lineNo,
                     " is out of order (arrival ", req.arrivalUs,
                     " before ", trace.back().arrivalUs, ")");
        trace.push_back(std::move(req));
    }
    return trace;
}

} // namespace serve
} // namespace bitfusion
