/**
 * @file
 * Request traces for the serving layer.
 *
 * A trace is an arrival-ordered list of InferenceRequests on the
 * serving engine's virtual clock (microseconds). Traces come from
 * three places: the seeded synthetic generator (a Poisson arrival
 * process over a network mix -- the reproducible open-loop load the
 * bitfusion_serve tool drives by default), a trace file
 * (docs/serving.md documents the format formatTrace/parseTrace
 * round-trip), or a test's hand-built vector.
 */

#ifndef BITFUSION_SERVE_TRACE_H
#define BITFUSION_SERVE_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace bitfusion {
namespace serve {

/** One client request: a batch of inputs for one network. */
struct InferenceRequest
{
    /** Dense id; doubles as the FIFO tie-breaker. */
    std::uint64_t id = 0;
    /** Network name, resolved against the engine's catalog. */
    std::string network;
    /** Inputs in this request (coalesced whole into one batch). */
    unsigned samples = 1;
    /** Arrival time on the virtual clock. */
    double arrivalUs = 0.0;
    /**
     * Absolute latest dispatch time; 0 = none. A forming batch never
     * waits past one of its own members' deadlines (a queued request
     * of another network cannot shorten someone else's window), and
     * a dispatch after the deadline counts as a miss in the report.
     */
    double deadlineUs = 0.0;
};

/**
 * Arrival-process selector for the synthetic generator. Poisson is
 * the legacy constant-rate stream (byte-identical to every earlier
 * release for a fixed seed); Mmpp is a two-state Markov-modulated
 * Poisson process whose state flips at seeded exponential dwell
 * times. Both compose with the diurnal envelope and the flash-crowd
 * window below.
 */
enum class ArrivalProcess
{
    Poisson,
    Mmpp,
};

/** Parameters of the synthetic open-loop arrival process. */
struct TraceSpec
{
    /** PRNG seed; equal seeds give byte-identical traces. */
    std::uint64_t seed = 1;
    /** Requests to generate. */
    std::size_t requests = 1000;
    /** Mean exponential inter-arrival gap (Poisson arrivals). */
    double meanGapUs = 5000.0;
    /** Request sizes are uniform in [1, maxSamples]. */
    unsigned maxSamples = 4;
    /**
     * Dispatch deadline granted to every request, relative to its
     * arrival; 0 = no deadlines.
     */
    double deadlineSlackUs = 0.0;
    /** Network mix, uniformly sampled; empty = the eight-paper zoo. */
    std::vector<std::string> networks;

    /** Arrival process; Poisson preserves the legacy stream. */
    ArrivalProcess process = ArrivalProcess::Poisson;
    /**
     * MMPP burst state: the arrival rate is multiplied by
     * burstRateMultiplier while the chain is bursting; the chain
     * dwells an exponential time with the given means in each state
     * (both must be positive when process == Mmpp). The chain starts
     * calm at time 0.
     */
    double burstRateMultiplier = 8.0;
    double meanBurstUs = 20000.0;
    double meanCalmUs = 200000.0;
    /**
     * Diurnal envelope: the rate is modulated by
     * 1 + amplitude * sin(2*pi * t / period). 0 period disables it;
     * amplitude must lie in [0, 1) so the rate stays positive.
     */
    double diurnalPeriodUs = 0.0;
    double diurnalAmplitude = 0.0;
    /**
     * Flash crowd: the rate is multiplied by flashMultiplier inside
     * [flashStartUs, flashStartUs + flashDurationUs). 0 duration
     * disables it.
     */
    double flashStartUs = 0.0;
    double flashDurationUs = 0.0;
    double flashMultiplier = 1.0;

    /** True when any burst feature deviates from plain Poisson. */
    bool bursty() const;
};

/** Generate the deterministic synthetic trace @p spec describes. */
std::vector<InferenceRequest> syntheticTrace(const TraceSpec &spec);

/** Render a trace in the file format above (diffable). */
std::string formatTrace(const std::vector<InferenceRequest> &trace);

/**
 * Parse the trace file format above; fatal -- with @p source and the
 * line number as file:line context -- on a malformed or truncated
 * field, a non-numeric time, a trailing column, or out-of-order
 * arrivals. Every field is parsed as a full token, so "12abc" is an
 * error rather than 12. Ids are assigned in line order.
 */
std::vector<InferenceRequest>
parseTrace(const std::string &text,
           const std::string &source = "<trace>");

} // namespace serve
} // namespace bitfusion

#endif // BITFUSION_SERVE_TRACE_H
