/**
 * @file
 * The four built-in dispatch policies. The FIFO policy is the
 * engine's original head-of-line behavior lifted out verbatim (the
 * R=1 report is locked byte-identical by tests/golden/
 * serve_fifo_r1.json); the others reorder, re-pick, or re-size
 * batches but share its coalescing helpers.
 */

#include "src/serve/scheduler.h"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>

#include "src/common/logging.h"

namespace bitfusion {
namespace serve {

namespace {

/** Deadline sort key: deadline-free requests sort last. */
double
deadlineKey(const InferenceRequest &r)
{
    return r.deadlineUs > 0.0 ? r.deadlineUs
                              : std::numeric_limits<double>::infinity();
}

/**
 * FIFO-coalesce queued requests of @p network into @p plan while
 * whole requests fit under @p cap; returns the coalesced samples.
 */
unsigned
coalesceFifo(const std::deque<InferenceRequest> &queue,
             const std::string &network, unsigned cap, BatchPlan &plan)
{
    unsigned samples = 0;
    for (std::size_t i = 0; i < queue.size() && samples < cap; ++i) {
        const InferenceRequest &r = queue[i];
        if (r.network == network && samples + r.samples <= cap) {
            plan.members.push_back(i);
            samples += r.samples;
        }
    }
    return samples;
}

/** Coalesced sample count @p network's queued requests reach under
 *  @p cap (the fill coalesceFifo would produce, without building
 *  the member list). */
unsigned
coalesceCount(const std::deque<InferenceRequest> &queue,
              const std::string &network, unsigned cap)
{
    unsigned samples = 0;
    for (std::size_t i = 0; i < queue.size() && samples < cap; ++i) {
        const InferenceRequest &r = queue[i];
        if (r.network == network && samples + r.samples <= cap)
            samples += r.samples;
    }
    return samples;
}

/** Clamp the dispatch to the members' arrivals (a member absorbed
 *  during an earlier plan's window can postdate this plan's now). */
double
memberDispatch(const std::deque<InferenceRequest> &queue,
               const BatchPlan &plan, double now)
{
    double dispatch = now;
    for (std::size_t i : plan.members)
        dispatch = std::max(dispatch, queue[i].arrivalUs);
    return dispatch;
}

/**
 * Head-of-line FIFO with the timer-based batching window: the
 * oldest request picks the network, arrived requests join in FIFO
 * order, and an unfilled batch waits for more arrivals until the
 * window set at the head's arrival fires -- never past a member's
 * deadline -- dispatching early the moment it fills.
 */
class FifoScheduler : public Scheduler
{
  public:
    const char *name() const override { return "fifo"; }

    BatchPlan plan(SchedulerContext &ctx, double now) override
    {
        const std::deque<InferenceRequest> &queue = ctx.queue();
        const unsigned cap = ctx.maxBatch();
        const InferenceRequest head = queue.front();

        BatchPlan out;
        out.network = head.network;
        unsigned samples = coalesceFifo(queue, head.network, cap, out);
        double dispatch = memberDispatch(queue, out, now);

        if (samples < cap && ctx.windowUs() > 0.0) {
            double windowEnd = head.arrivalUs + ctx.windowUs();
            for (std::size_t i : out.members) {
                if (queue[i].deadlineUs > 0.0)
                    windowEnd = std::min(windowEnd, queue[i].deadlineUs);
            }
            windowEnd = std::max(windowEnd, now);
            const bool waited = windowEnd > now;
            while (samples < cap && ctx.nextArrival() != nullptr &&
                   ctx.nextArrival()->arrivalUs <= windowEnd) {
                if (!ctx.absorbNextArrival())
                    continue; // shed by admission control
                const InferenceRequest &next = queue.back();
                if (next.network == head.network &&
                    samples + next.samples <= cap) {
                    out.members.push_back(queue.size() - 1);
                    samples += next.samples;
                    dispatch = std::max(dispatch, next.arrivalUs);
                    if (next.deadlineUs > 0.0) {
                        windowEnd = std::min(
                            windowEnd,
                            std::max(next.deadlineUs, dispatch));
                    }
                }
            }
            if (samples < cap && waited)
                dispatch = windowEnd; // the batching timer fires
        }

        out.samples = samples;
        out.dispatchUs = dispatch;
        return out;
    }
};

/**
 * Same-network lookahead: pick the queued network that coalesces
 * into the fullest batch (ties go to the earliest-queued network),
 * unless the head-of-line request has already waited out the
 * batching window -- then the head's network is served, so no
 * request starves longer than the window plus one in-flight batch.
 * Lookahead never waits on a timer; it only reorders what is queued.
 */
class LookaheadScheduler : public Scheduler
{
  public:
    const char *name() const override { return "lookahead"; }

    BatchPlan plan(SchedulerContext &ctx, double now) override
    {
        const std::deque<InferenceRequest> &queue = ctx.queue();
        const unsigned cap = ctx.maxBatch();
        const InferenceRequest &head = queue.front();

        std::string network = head.network;
        if (now < head.arrivalUs + ctx.windowUs()) {
            // Head not yet overdue: the fullest batch wins.
            unsigned bestFill = 0;
            std::set<std::string> seen;
            for (std::size_t i = 0; i < queue.size(); ++i) {
                if (!seen.insert(queue[i].network).second)
                    continue;
                const unsigned fill =
                    coalesceCount(queue, queue[i].network, cap);
                if (fill > bestFill) {
                    bestFill = fill;
                    network = queue[i].network;
                }
            }
        }

        BatchPlan out;
        out.network = network;
        out.samples = coalesceFifo(queue, network, cap, out);
        out.dispatchUs = memberDispatch(queue, out, now);
        return out;
    }
};

/**
 * Earliest-deadline-first: the tightest queued deadline picks the
 * network, and requests of that network join in (deadline, queue
 * position) order while they fit. Dispatches immediately -- when
 * deadlines drive the schedule, idling on a batching timer only
 * burns slack.
 */
class EdfScheduler : public Scheduler
{
  public:
    const char *name() const override { return "edf"; }

    BatchPlan plan(SchedulerContext &ctx, double now) override
    {
        const std::deque<InferenceRequest> &queue = ctx.queue();
        const unsigned cap = ctx.maxBatch();

        std::size_t headIdx = 0;
        for (std::size_t i = 1; i < queue.size(); ++i) {
            if (deadlineKey(queue[i]) < deadlineKey(queue[headIdx]))
                headIdx = i;
        }

        BatchPlan out;
        out.network = queue[headIdx].network;

        // Same-network candidates in (deadline, queue position)
        // order; whole requests join while they fit.
        std::vector<std::size_t> candidates;
        for (std::size_t i = 0; i < queue.size(); ++i) {
            if (queue[i].network == out.network)
                candidates.push_back(i);
        }
        std::stable_sort(candidates.begin(), candidates.end(),
                         [&](std::size_t a, std::size_t b) {
                             return deadlineKey(queue[a]) <
                                    deadlineKey(queue[b]);
                         });
        unsigned samples = 0;
        for (std::size_t i : candidates) {
            if (samples >= cap)
                break;
            if (samples + queue[i].samples <= cap) {
                out.members.push_back(i);
                samples += queue[i].samples;
            }
        }

        out.samples = samples;
        out.dispatchUs = memberDispatch(queue, out, now);
        return out;
    }
};

/**
 * SLO-aware batch sizing: the head-of-line request picks the
 * network, but the batch grows -- over the queue and then over
 * future arrivals -- only while the simulated latency of the grown
 * batch keeps every member's end-to-end latency inside the budget.
 * It dispatches the moment no further joiner can fit, so it never
 * idles on a timer; when even the head alone cannot meet its
 * budget, the batch falls back to a plain FIFO fill (the budget is
 * already lost, so throughput is all that is left to optimize).
 */
class SloScheduler : public Scheduler
{
  public:
    const char *name() const override { return "slo"; }

    BatchPlan plan(SchedulerContext &ctx, double now) override
    {
        const std::deque<InferenceRequest> &queue = ctx.queue();
        const unsigned cap = ctx.maxBatch();
        const double budget = ctx.sloBudgetUs();
        const InferenceRequest head = queue.front();

        BatchPlan out;
        out.network = head.network;
        out.members.push_back(0);
        unsigned samples = head.samples;
        double dispatch = std::max(now, head.arrivalUs);
        double budgetEnd = head.arrivalUs + budget;

        if (dispatch + ctx.batchLatencyUs(head.network, samples) >
            budgetEnd) {
            // The head's budget is already unmeetable: fill the
            // batch FIFO-style and move on.
            out.members.clear();
            out.samples = coalesceFifo(queue, head.network, cap, out);
            out.dispatchUs = memberDispatch(queue, out, now);
            return out;
        }

        // Queued joiners, FIFO order, while every budget holds.
        for (std::size_t i = 1; i < queue.size() && samples < cap;
             ++i) {
            const InferenceRequest &r = queue[i];
            if (r.network != head.network || samples + r.samples > cap)
                continue;
            const double d = std::max(dispatch, r.arrivalUs);
            const double end = std::min(budgetEnd, r.arrivalUs + budget);
            if (d + ctx.batchLatencyUs(head.network, samples + r.samples) <=
                end) {
                out.members.push_back(i);
                samples += r.samples;
                dispatch = d;
                budgetEnd = end;
            }
        }

        // Future joiners: hold the batch on a timer set at the last
        // moment every current member still meets its budget;
        // joiners extend the batch (and pull the timer in) as they
        // arrive, and the batch fires early the moment it fills.
        // The timer is committed causally: when no joiner shows up
        // before it fires, the wait is still paid.
        while (samples < cap) {
            const double latest =
                budgetEnd - ctx.batchLatencyUs(head.network, samples);
            if (latest <= dispatch)
                break; // no slack left to wait with
            const InferenceRequest *next = ctx.nextArrival();
            if (next == nullptr || next->arrivalUs > latest) {
                dispatch = latest; // the budget timer fires
                break;
            }
            if (!ctx.absorbNextArrival())
                continue; // shed by admission control
            const InferenceRequest &joined = queue.back();
            if (joined.network == head.network &&
                samples + joined.samples <= cap) {
                const double d = std::max(dispatch, joined.arrivalUs);
                const double end =
                    std::min(budgetEnd, joined.arrivalUs + budget);
                if (d + ctx.batchLatencyUs(head.network,
                                           samples + joined.samples) <=
                    end) {
                    out.members.push_back(queue.size() - 1);
                    samples += joined.samples;
                    dispatch = d;
                    budgetEnd = end;
                }
            }
            // A non-joiner (or a budget-breaking one) just queues
            // up; the timer keeps running.
        }

        out.samples = samples;
        out.dispatchUs = dispatch;
        return out;
    }
};

} // namespace

SchedulerRegistry &
SchedulerRegistry::builtin()
{
    static SchedulerRegistry registry = [] {
        SchedulerRegistry r;
        r.add({"fifo",
               "head-of-line coalescing with the timer-based "
               "batching window",
               [] { return std::make_unique<FifoScheduler>(); },
               nullptr});
        r.add({"lookahead",
               "fullest same-network batch; head starvation bounded "
               "by the window",
               [] { return std::make_unique<LookaheadScheduler>(); },
               [](const SchedulerKnobs &knobs) {
                   if (knobs.maxWaitUs <= 0.0) {
                       BF_FATAL("the lookahead scheduler needs a "
                                "positive batching window (maxWaitUs) "
                                "as its head-of-line starvation "
                                "bound");
                   }
               }});
        r.add({"edf",
               "earliest-deadline-first batch pick and join order",
               [] { return std::make_unique<EdfScheduler>(); },
               nullptr});
        r.add({"slo",
               "grows batches only while every member meets the "
               "latency budget",
               [] { return std::make_unique<SloScheduler>(); },
               [](const SchedulerKnobs &knobs) {
                   if (knobs.sloBudgetUs <= 0.0) {
                       BF_FATAL("the slo scheduler needs a positive "
                                "latency budget (sloBudgetUs)");
                   }
               }});
        return r;
    }();
    return registry;
}

void
SchedulerRegistry::add(Entry entry)
{
    if (find(entry.name) != nullptr)
        BF_FATAL("duplicate scheduler '", entry.name, "'");
    entries_.push_back(std::move(entry));
}

const SchedulerRegistry::Entry *
SchedulerRegistry::find(const std::string &name) const
{
    for (const auto &entry : entries_) {
        if (entry.name == name)
            return &entry;
    }
    return nullptr;
}

std::unique_ptr<Scheduler>
SchedulerRegistry::make(const std::string &name) const
{
    const Entry *entry = find(name);
    if (entry == nullptr) {
        BF_FATAL("unknown scheduler '", name, "' (known: ", names(),
                 ")");
    }
    return entry->make();
}

std::string
SchedulerRegistry::names() const
{
    std::string out;
    for (const auto &entry : entries_)
        out += (out.empty() ? "" : " | ") + entry.name;
    return out;
}

std::unique_ptr<Scheduler>
makeScheduler(const std::string &name)
{
    return SchedulerRegistry::builtin().make(name);
}

std::string
schedulerNames()
{
    return SchedulerRegistry::builtin().names();
}

} // namespace serve
} // namespace bitfusion
