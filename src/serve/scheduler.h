/**
 * @file
 * Pluggable dispatch policies for the serving engine.
 *
 * A Scheduler decides, each time a replica frees up, which queued
 * requests form the next batch and when it leaves: the engine owns
 * the virtual clock, the arrival stream, and the replicas, and hands
 * the scheduler a SchedulerContext view of the pending queue. Four
 * policies ship (see docs/serving.md for the full semantics):
 *
 *  - "fifo"      -- head-of-line coalescing with the timer-based
 *                   batching window; byte-identical to the engine's
 *                   pre-scheduler behavior at one replica.
 *  - "lookahead" -- same-network lookahead: picks the queued network
 *                   that forms the fullest batch, but never lets the
 *                   head-of-line request starve past the batching
 *                   window (maxWaitUs, which it requires).
 *  - "edf"       -- earliest-deadline-first: the tightest deadline
 *                   picks the batch's network and members join in
 *                   deadline order (deadline-free requests sort
 *                   last, FIFO among themselves).
 *  - "slo"       -- SLO-aware batch sizing: grows the batch (and
 *                   waits for future joiners) only while the
 *                   simulated batch latency keeps every member
 *                   inside the latency budget (sloBudgetUs, which it
 *                   requires), instead of filling to a fixed cap.
 *
 * Schedulers are deterministic pure policies: all state they see is
 * the context, so a fixed trace replans identically on every run and
 * worker-thread count.
 */

#ifndef BITFUSION_SERVE_SCHEDULER_H
#define BITFUSION_SERVE_SCHEDULER_H

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/serve/trace.h"

namespace bitfusion {
namespace serve {

/** One planned batch: queue members, size, and departure time. */
struct BatchPlan
{
    /** Indices into SchedulerContext::queue(), in join order. */
    std::vector<std::size_t> members;
    /** The batch's network (every member's). */
    std::string network;
    /** Coalesced sample count (sum over members). */
    unsigned samples = 0;
    /**
     * Virtual dispatch time; must be >= the planning time and >=
     * every member's arrival (the engine clamps defensively).
     */
    double dispatchUs = 0.0;
};

/**
 * The engine-owned view a scheduler plans against: the pending
 * queue, the not-yet-arrived request stream (which a policy may
 * absorb while it waits out a batching window), and the memoized
 * simulated batch latency it can size batches with.
 */
class SchedulerContext
{
  public:
    virtual ~SchedulerContext() = default;

    /** Pending requests, in (arrival, id) order per absorb. */
    virtual const std::deque<InferenceRequest> &queue() const = 0;
    /** Earliest future arrival; nullptr when the stream is dry. */
    virtual const InferenceRequest *nextArrival() const = 0;
    /**
     * Move the earliest future arrival to the back of queue().
     * Returns false when admission control shed it instead (the
     * queue is unchanged; the policy must not touch queue().back()).
     */
    virtual bool absorbNextArrival() = 0;
    /**
     * Cheapest simulated latency of a (network, samples) batch
     * across the platform classes with a replica free at the
     * planning time. The engine routes each batch to the cheapest
     * replica free at dispatch, and the free set only grows between
     * planning and dispatch, so this is an upper bound on the
     * latency the planned batch will actually be charged.
     */
    virtual double batchLatencyUs(const std::string &network,
                                  unsigned samples) = 0;
    /** Coalescing cap in samples. */
    virtual unsigned maxBatch() const = 0;
    /** Batching window / starvation bound (ServeOptions.maxWaitUs). */
    virtual double windowUs() const = 0;
    /** SLO latency budget (ServeOptions.sloBudgetUs; 0 = unset). */
    virtual double sloBudgetUs() const = 0;
    /** Replicas behind the queue. Defaulted so pre-fault contexts
     *  keep compiling. */
    virtual std::size_t totalReplicas() const { return 1; }
    /**
     * Replicas not inside a fault outage at the planning time;
     * equals totalReplicas() when no fault model is active. A
     * policy can compare the two to tell capacity loss from
     * overload (batchLatencyUs already excludes down replicas).
     */
    virtual std::size_t upReplicas() const { return totalReplicas(); }
};

/** Dispatch policy; stateless between plan() calls. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Registry name ("fifo", "lookahead", "edf", "slo"). */
    virtual const char *name() const = 0;

    /**
     * Plan the next batch at virtual time @p now. The queue is
     * non-empty; the plan must name at least one member and all
     * members must share one network.
     */
    virtual BatchPlan plan(SchedulerContext &ctx, double now) = 0;
};

/**
 * The engine knobs a policy can require at startup (mirrors the
 * relevant ServeOptions fields without depending on them).
 */
struct SchedulerKnobs
{
    /** Batching window / starvation bound (maxWaitUs). */
    double maxWaitUs = 0.0;
    /** SLO latency budget (sloBudgetUs; 0 = unset). */
    double sloBudgetUs = 0.0;
};

/**
 * Factories for every dispatch policy, mirroring PlatformRegistry:
 * the built-in policies pre-register in builtin() through the same
 * add() an out-of-tree scheduler uses at runtime, and the CLI's
 * --scheduler help and error text are generated from the entries.
 */
class SchedulerRegistry
{
  public:
    struct Entry
    {
        /** Policy name (the --scheduler token). */
        std::string name;
        /** One-line description of the policy. */
        std::string help;
        /** Build a fresh policy instance. */
        std::function<std::unique_ptr<Scheduler>()> make;
        /**
         * Fatal-check the engine knobs before a run (a policy that
         * requires a window or budget rejects a mis-paired setup
         * here); nullptr = no requirements.
         */
        std::function<void(const SchedulerKnobs &)> validate;
    };

    /** The registry holding the built-in policies. */
    static SchedulerRegistry &builtin();

    /** Register a policy; fatal on a duplicate name. */
    void add(Entry entry);

    /** Look up a policy; nullptr when unknown. */
    const Entry *find(const std::string &name) const;

    /** Build the named policy; fatal on an unknown name. */
    std::unique_ptr<Scheduler> make(const std::string &name) const;

    const std::vector<Entry> &entries() const { return entries_; }

    /** " | "-joined policy names (for CLI help and errors). */
    std::string names() const;

  private:
    std::vector<Entry> entries_;
};

/** Build the named scheduler; fatal on an unknown name. */
std::unique_ptr<Scheduler> makeScheduler(const std::string &name);

/** "fifo | lookahead | edf | slo" (for CLI help and errors). */
std::string schedulerNames();

} // namespace serve
} // namespace bitfusion

#endif // BITFUSION_SERVE_SCHEDULER_H
