/**
 * @file
 * Fault-spec validation, the "ID@T[:for=D]" outage parser, and the
 * lazily generated per-replica fault timeline.
 */

#include "src/serve/faults.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "src/common/logging.h"

namespace bitfusion {
namespace serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Parse a full-token nonnegative double; fatal on anything else. */
double
parseNumber(const std::string &token, const char *flag,
            const char *what)
{
    char *end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0' ||
        !std::isfinite(value) || value < 0.0) {
        BF_FATAL(flag, " has a malformed ", what, " '", token,
                 "' (expected ID@T[:for=D])");
    }
    return value;
}

/** First interval covering @p t; nullptr when @p t is up time.
 *  @p list is sorted by start with non-overlapping members. */
const FaultTimeline::Interval *
covering(const std::vector<FaultTimeline::Interval> &list, double t)
{
    auto it = std::upper_bound(
        list.begin(), list.end(), t,
        [](double v, const FaultTimeline::Interval &iv) {
            return v < iv.startUs;
        });
    if (it == list.begin())
        return nullptr;
    --it;
    return it->endUs > t ? &*it : nullptr;
}

/** First interval start strictly after @p t; +inf when none. */
double
nextStartAfter(const std::vector<FaultTimeline::Interval> &list,
               double t)
{
    auto it = std::upper_bound(
        list.begin(), list.end(), t,
        [](double v, const FaultTimeline::Interval &iv) {
            return v < iv.startUs;
        });
    return it != list.end() ? it->startUs : kInf;
}

/** Sort intervals by start and merge overlapping/touching ones. */
void
normalize(std::vector<FaultTimeline::Interval> &list)
{
    std::sort(list.begin(), list.end(),
              [](const FaultTimeline::Interval &a,
                 const FaultTimeline::Interval &b) {
                  if (a.startUs != b.startUs)
                      return a.startUs < b.startUs;
                  return a.endUs < b.endUs;
              });
    std::vector<FaultTimeline::Interval> merged;
    for (const auto &iv : list) {
        if (!merged.empty() && iv.startUs <= merged.back().endUs) {
            merged.back().endUs =
                std::max(merged.back().endUs, iv.endUs);
        } else {
            merged.push_back(iv);
        }
    }
    list = std::move(merged);
}

} // namespace

// ----------------------------------------------------------- FaultEvent

FaultEvent
parseFaultEvent(const std::string &text, const char *flag)
{
    const auto at = text.find('@');
    if (at == std::string::npos || at == 0) {
        BF_FATAL(flag, " wants ID@T[:for=D], got '", text, "'");
    }
    const std::string idToken = text.substr(0, at);
    char *end = nullptr;
    const unsigned long long id =
        std::strtoull(idToken.c_str(), &end, 10);
    if (end == idToken.c_str() || *end != '\0') {
        BF_FATAL(flag, " has a malformed target id '", idToken,
                 "' (expected ID@T[:for=D])");
    }

    FaultEvent event;
    event.target = static_cast<std::size_t>(id);
    std::string when = text.substr(at + 1);
    const auto colon = when.find(':');
    if (colon != std::string::npos) {
        const std::string dur = when.substr(colon + 1);
        when = when.substr(0, colon);
        if (dur.rfind("for=", 0) != 0) {
            BF_FATAL(flag, " wants ID@T[:for=D], got duration '",
                     dur, "'");
        }
        event.forUs =
            parseNumber(dur.substr(4), flag, "outage duration");
        if (event.forUs <= 0.0) {
            BF_FATAL(flag, " outage duration must be positive, "
                           "got '",
                     dur, "' (omit :for= for a permanent outage)");
        }
    }
    event.atUs = parseNumber(when, flag, "outage start time");
    return event;
}

// ------------------------------------------------------------ FaultSpec

bool
FaultSpec::active() const
{
    return mtbfUs > 0.0 || !replicaEvents.empty() ||
           !rackEvents.empty();
}

void
FaultSpec::validate(std::size_t replicaCount) const
{
    if ((mtbfUs > 0.0) != (mttrUs > 0.0)) {
        BF_FATAL("seeded failures need MTBF and MTTR together, got "
                 "mtbf ",
                 mtbfUs, " mttr ", mttrUs);
    }
    if (!std::isfinite(mtbfUs) || mtbfUs < 0.0 ||
        !std::isfinite(mttrUs) || mttrUs < 0.0) {
        BF_FATAL("MTBF/MTTR must be nonnegative finite values, got "
                 "mtbf ",
                 mtbfUs, " mttr ", mttrUs);
    }
    for (const auto &ev : replicaEvents) {
        if (ev.target >= replicaCount) {
            BF_FATAL("fault event targets replica ", ev.target,
                     " but the fleet has ", replicaCount,
                     " replicas");
        }
        if (!std::isfinite(ev.atUs) || ev.atUs < 0.0 ||
            !std::isfinite(ev.forUs) || ev.forUs < 0.0) {
            BF_FATAL("fault event for replica ", ev.target,
                     " has a bad window: at ", ev.atUs, " for ",
                     ev.forUs);
        }
    }
    if (!rackEvents.empty() && rackSize == 0)
        BF_FATAL("rack fault events need a positive rack size");
    if (rackSize > replicaCount) {
        BF_FATAL("rack size ", rackSize, " exceeds the fleet's ",
                 replicaCount, " replicas");
    }
    if (rackSize > 0) {
        const std::size_t racks =
            (replicaCount + rackSize - 1) / rackSize;
        for (const auto &ev : rackEvents) {
            if (ev.target >= racks) {
                BF_FATAL("fault event targets rack ", ev.target,
                         " but rack size ", rackSize, " over ",
                         replicaCount, " replicas gives ", racks,
                         " racks");
            }
            if (!std::isfinite(ev.atUs) || ev.atUs < 0.0 ||
                !std::isfinite(ev.forUs) || ev.forUs < 0.0) {
                BF_FATAL("fault event for rack ", ev.target,
                         " has a bad window: at ", ev.atUs, " for ",
                         ev.forUs);
            }
        }
    }
}

// ---------------------------------------------------------- RetryPolicy

bool
RetryPolicy::active() const
{
    return retriesEnabled() || hedgingEnabled();
}

void
RetryPolicy::validate() const
{
    if (maxAttempts == 0)
        BF_FATAL("retry policy needs at least one attempt");
    if (!std::isfinite(backoffBaseUs) || backoffBaseUs < 0.0) {
        BF_FATAL("retry backoff must be a nonnegative finite value, "
                 "got ",
                 backoffBaseUs);
    }
    if (!std::isfinite(jitterFrac) || jitterFrac < 0.0 ||
        jitterFrac > 1.0) {
        BF_FATAL("retry jitter fraction must lie in [0, 1], got ",
                 jitterFrac);
    }
    if (!retriesEnabled() &&
        (backoffBaseUs > 0.0 || jitterFrac > 0.0 ||
         retryBudget > 0)) {
        BF_FATAL("retry backoff/jitter/budget need maxAttempts > 1 "
                 "(nothing ever retries otherwise)");
    }
    if (!std::isfinite(hedgeDelayUs) || hedgeDelayUs < 0.0 ||
        !std::isfinite(hedgeP99Multiplier) ||
        hedgeP99Multiplier < 0.0) {
        BF_FATAL("hedge knobs must be nonnegative finite values, "
                 "got delay ",
                 hedgeDelayUs, " p99 multiplier ",
                 hedgeP99Multiplier);
    }
    if (hedgeDelayUs > 0.0 && hedgeP99Multiplier > 0.0) {
        BF_FATAL("give either a fixed hedge delay or a p99-derived "
                 "one, not both");
    }
}

// -------------------------------------------------------- FaultTimeline

FaultTimeline::FaultTimeline(const FaultSpec &spec,
                             std::size_t replicaCount)
    : spec_(spec)
{
    // Every replica gets an independent stream derived from the one
    // spec seed, so lazily extending one lane never perturbs
    // another and the layout is identical however queries arrive.
    Prng seeder(spec_.seed);
    lanes_.reserve(replicaCount);
    for (std::size_t r = 0; r < replicaCount; ++r)
        lanes_.emplace_back(seeder.next());

    const auto schedule = [&](std::size_t r, const FaultEvent &ev) {
        Interval iv;
        iv.startUs = ev.atUs;
        iv.endUs = ev.forUs > 0.0 ? ev.atUs + ev.forUs : kInf;
        lanes_[r].scheduled.push_back(iv);
    };
    for (const auto &ev : spec_.replicaEvents)
        schedule(ev.target, ev);
    for (const auto &ev : spec_.rackEvents) {
        const std::size_t first = ev.target * spec_.rackSize;
        const std::size_t last =
            std::min(first + spec_.rackSize, replicaCount);
        for (std::size_t r = first; r < last; ++r)
            schedule(r, ev);
    }
    for (auto &lane : lanes_)
        normalize(lane.scheduled);
}

void
FaultTimeline::extend(Lane &lane, double t)
{
    if (spec_.mtbfUs <= 0.0 || !std::isfinite(t))
        return;
    while (lane.knownUs <= t) {
        const double up = lane.prng.nextExponential(spec_.mtbfUs);
        const double down = lane.prng.nextExponential(spec_.mttrUs);
        const double start = lane.clockUs + up;
        double end = start + down;
        // A zero exponential draw (probability ~2^-53) must still
        // advance the renewal clock.
        if (end <= lane.clockUs)
            end = lane.clockUs + 1e-9;
        if (end > start)
            lane.seeded.push_back(Interval{start, end});
        lane.clockUs = end;
        lane.knownUs = end;
    }
}

bool
FaultTimeline::upAt(std::size_t r, double t)
{
    BF_ASSERT(r < lanes_.size());
    Lane &lane = lanes_[r];
    extend(lane, t);
    return covering(lane.scheduled, t) == nullptr &&
           covering(lane.seeded, t) == nullptr;
}

double
FaultTimeline::upAfter(std::size_t r, double t)
{
    BF_ASSERT(r < lanes_.size());
    Lane &lane = lanes_[r];
    double u = t;
    for (;;) {
        if (!std::isfinite(u))
            return u;
        extend(lane, u);
        double e = u;
        if (const Interval *iv = covering(lane.scheduled, u))
            e = std::max(e, iv->endUs);
        if (const Interval *iv = covering(lane.seeded, u))
            e = std::max(e, iv->endUs);
        if (e == u)
            return u;
        u = e;
    }
}

double
FaultTimeline::nextDownWithin(std::size_t r, double t, double limit)
{
    BF_ASSERT(r < lanes_.size());
    if (!(limit > t))
        return kInf;
    Lane &lane = lanes_[r];
    extend(lane, limit);
    const double onset =
        std::min(nextStartAfter(lane.scheduled, t),
                 nextStartAfter(lane.seeded, t));
    return onset < limit ? onset : kInf;
}

bool
FaultTimeline::anyDownAt(double t)
{
    for (std::size_t r = 0; r < lanes_.size(); ++r) {
        if (!upAt(r, t))
            return true;
    }
    return false;
}

double
FaultTimeline::downUsWithin(std::size_t r, double horizon)
{
    BF_ASSERT(r < lanes_.size());
    Lane &lane = lanes_[r];
    extend(lane, horizon);
    // Sweep the union of both interval lists clipped to
    // [0, horizon]; each list is sorted but they may overlap each
    // other.
    std::vector<Interval> all;
    all.reserve(lane.scheduled.size() + lane.seeded.size());
    all.insert(all.end(), lane.scheduled.begin(),
               lane.scheduled.end());
    all.insert(all.end(), lane.seeded.begin(), lane.seeded.end());
    normalize(all);
    double total = 0.0;
    for (const auto &iv : all) {
        if (iv.startUs >= horizon)
            break;
        total += std::min(iv.endUs, horizon) - iv.startUs;
    }
    return total;
}

double
FaultTimeline::lastRecoveryBefore(double horizon)
{
    double last = 0.0;
    for (auto &lane : lanes_) {
        extend(lane, horizon);
        for (const auto *list : {&lane.scheduled, &lane.seeded}) {
            for (const auto &iv : *list) {
                if (iv.endUs <= horizon)
                    last = std::max(last, iv.endUs);
            }
        }
    }
    return last;
}

} // namespace serve
} // namespace bitfusion
