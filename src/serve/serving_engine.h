/**
 * @file
 * The dynamic-batching serving layer over Platform::run.
 *
 * The ServingEngine fronts a fleet of R simulated platform replicas
 * (possibly heterogeneous) with one request queue on a virtual
 * clock: clients submit InferenceRequest{network, batch-of-inputs,
 * deadline}, a pluggable Scheduler (src/serve/scheduler.h: fifo |
 * lookahead | edf | slo) coalesces compatible requests into dynamic
 * batches, and every dispatch is routed to the free replica that
 * serves the batch's network cheapest and charged that platform's
 * simulated batch latency. The engine records per-request queueing
 * and compute latency, so a run reports p50/p95/p99 latency,
 * throughput, batch fill, deadline misses, energy, and per-replica
 * utilization.
 *
 * Costs come from the same Platform::run every figure uses, with
 * compiled artifacts resolved through the process-level
 * ArtifactCache (shared with the sweep runner), and the simulated
 * latency of a (platform class, network, batch-size) triple memoized
 * after its first use. The worker pool (runner/parallel_for.h)
 * precompiles every distinct network per platform class at the full
 * batch size up front; odd-sized remainder batches compile on first
 * dispatch.
 *
 * Determinism: the event loop is serial on the virtual clock,
 * schedulers are pure policies over the queue, and the platforms are
 * pure functions of their inputs, so for a fixed trace (or seed) the
 * report -- including its JSON dump -- is byte-identical for any
 * worker-thread count. With one replica and the fifo scheduler the
 * report is additionally byte-identical to the engine's
 * pre-scheduler output (locked by tests/golden/serve_fifo_r1.json).
 *
 * Policy semantics, the virtual-clock model, and the trace-file
 * format are documented in docs/serving.md.
 */

#ifndef BITFUSION_SERVE_SERVING_ENGINE_H
#define BITFUSION_SERVE_SERVING_ENGINE_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/streaming_stats.h"
#include "src/core/platform_registry.h"
#include "src/core/stats.h"
#include "src/dnn/model_zoo.h"
#include "src/serve/faults.h"
#include "src/serve/trace.h"

namespace bitfusion {

class ArtifactCache;
class ArtifactStore;

namespace serve {

/** Engine configuration. */
struct ServeOptions
{
    /** Precompile worker threads; 0 = hardware concurrency. */
    unsigned threads = 0;
    /** Phase-time composition (core/layer_walk.h). */
    TimingModel timing = TimingModel::Simple;
    /**
     * Largest coalesced batch in samples; 0 = the fleet's largest
     * configured batch (the paper's best batch at one replica).
     */
    unsigned maxBatch = 0;
    /**
     * Batching window: how long a fifo dispatch may wait for more
     * requests past the head request's arrival (0 = dispatch
     * immediately), and the lookahead scheduler's head-of-line
     * starvation bound.
     */
    double maxWaitUs = 0.0;
    /**
     * Replica count when the engine is built from one PlatformSpec;
     * must be 1 when an explicit fleet is given.
     */
    unsigned replicas = 1;
    /** Dispatch policy: fifo | lookahead | edf | slo. */
    std::string scheduler = "fifo";
    /** End-to-end latency budget the slo scheduler sizes against. */
    double sloBudgetUs = 0.0;
    /**
     * Compiled-artifact cache; nullptr uses the process-level
     * ArtifactCache::process() shared with the sweep runner.
     */
    ArtifactCache *cache = nullptr;
    /**
     * Persistent store attached to the cache at engine construction
     * (core/artifact_store.h); nullptr leaves the cache's current
     * attachment -- for the process cache, the BITFUSION_STORE
     * process store -- in place.
     */
    ArtifactStore *store = nullptr;
    /**
     * Summarize latencies with the constant-memory P-squared
     * estimator instead of the exact nearest-rank percentiles; the
     * million-request mode (docs/serving.md documents the error
     * bounds). Off by default so small runs and the locked goldens
     * keep the exact values.
     */
    bool streamingStats = false;
    /**
     * Keep the per-request RequestRecord (and per-batch BatchRecord)
     * vectors on the report. On by default for the library API; the
     * CLI ties it to --per-request so million-request runs do not
     * hold O(requests) records.
     */
    bool retainRecords = true;
    /**
     * Admission control: shed an arriving request when the pending
     * queue already holds this many requests (0 = unbounded). Not
     * valid for closed-loop runs (a shed client would reissue at the
     * same instant and shed forever).
     */
    std::size_t maxQueueDepth = 0;
    /**
     * Admission control: shed an arriving request whose dispatch
     * deadline is already unmeetable -- the earliest any replica
     * frees (the cheapest-dispatch oracle) is past its deadline --
     * instead of queueing a guaranteed miss. Sheds are counted
     * separately from deadline misses.
     */
    bool shedUnmeetable = false;
    /**
     * Measure throughput and replica utilization over the active
     * window (first arrival to makespan) instead of from virtual
     * time 0, which understates both for parsed traces whose first
     * arrival is far from 0. Off by default so the locked goldens
     * keep the virtual-time-0 definition.
     */
    bool activeWindowStats = false;
    /**
     * Deterministic fault model (src/serve/faults.h): explicit and
     * seeded replica outages on the virtual clock. A replica dying
     * strictly inside a batch's (dispatch, finish) window destroys
     * the batch; the retry policy below decides what happens to its
     * requests. Inactive by default, leaving behavior and report
     * bytes untouched.
     */
    FaultSpec faults;
    /**
     * Retry / hedging policy for fault-destroyed batches (and
     * optional hedged duplicate dispatch). Inactive by default.
     */
    RetryPolicy retry;
    /**
     * Microseconds charged on top of a batch's compute latency when
     * the serving replica's previous batch ran a different network
     * (weight reload / reconfiguration); a replica's first batch
     * pays it too (cold start). 0 disables the model and keeps the
     * locked goldens byte-identical.
     */
    double switchPenaltyUs = 0.0;
};

/** Closed-loop benchmark: clients with one outstanding request. */
struct ClosedLoopSpec
{
    /** Concurrent clients; each replaces its request on completion. */
    unsigned clients = 4;
    /** Total requests to serve before draining. */
    std::size_t requests = 256;
    /** Samples per request. */
    unsigned samples = 1;
    /** PRNG seed for the per-request network choice. */
    std::uint64_t seed = 1;
    /** Dispatch deadline granted per request after its arrival;
     *  0 = no deadlines. */
    double deadlineSlackUs = 0.0;
    /** Network mix; empty = the engine's whole catalog. */
    std::vector<std::string> networks;
};

/** One served request with its measured timeline. */
struct RequestRecord
{
    InferenceRequest request;
    /** Virtual time the batch containing this request started. */
    double dispatchUs = 0.0;
    /** Virtual time the batch finished. */
    double finishUs = 0.0;
    /** Total samples of the coalesced batch it rode in. */
    unsigned batchSamples = 0;
    /** Replica the batch ran on. */
    unsigned replica = 0;
    /** True when dispatch happened after the request's deadline. */
    bool deadlineMissed = false;
    /** Dispatch attempts consumed, the successful one included. */
    unsigned attempts = 1;
    /** True when a hedged duplicate dispatch covered this request. */
    bool hedged = false;
    /** True when a fault lost the request before it finally served. */
    bool recovered = false;

    /** Time spent queued before dispatch. */
    double queueUs() const { return dispatchUs - request.arrivalUs; }
    /** End-to-end latency (queueing + compute). */
    double latencyUs() const { return finishUs - request.arrivalUs; }
};

/** One dispatched batch. */
struct BatchRecord
{
    std::string network;
    /** Coalesced sample count (the platform batch it ran at). */
    unsigned samples = 0;
    /** Requests coalesced into this batch. */
    std::size_t requests = 0;
    double dispatchUs = 0.0;
    /** Simulated compute latency of the batch. */
    double latencyUs = 0.0;
    /** Replica the batch ran on. */
    unsigned replica = 0;
};

/** What one replica did over a run. */
struct ReplicaUsage
{
    /** The replica's platform display name. */
    std::string platform;
    std::size_t batches = 0;
    std::uint64_t samples = 0;
    /** Summed simulated compute time of its batches. */
    double busyUs = 0.0;
    /** busyUs over the run's makespan. */
    double utilization = 0.0;
    /** Summed simulated energy of its batches. */
    double energyJ = 0.0;
    /** Down time within [0, makespan] (fault runs only). */
    double downUs = 0.0;
    /** Dispatches a fault destroyed on this replica. */
    std::size_t lostBatches = 0;
    /** Compute time spent on lost or cancelled dispatches. */
    double wastedUs = 0.0;
};

/** Latency summary (nearest-rank percentiles). */
struct Percentiles
{
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double mean = 0.0;
    double max = 0.0;
};

/** Nearest-rank percentile summary of @p values (exposed for tests). */
Percentiles percentiles(std::vector<double> values);

/** Everything one serving run measured. */
struct ServeReport
{
    /** "open-loop" or "closed-loop". */
    std::string mode;
    /** Fleet display name ("name" or "nameA x2 + nameB"). */
    std::string platform;
    /** Dispatch policy the run used. */
    std::string scheduler = "fifo";
    TimingModel timing = TimingModel::Simple;
    unsigned maxBatch = 0;
    double maxWaitUs = 0.0;
    double sloBudgetUs = 0.0;

    /**
     * Served requests in id order; retained only when
     * ServeOptions.retainRecords (the default) is on. requestCount
     * always holds the served total.
     */
    std::vector<RequestRecord> requests;
    /** Dispatched batches in dispatch order (retainRecords only). */
    std::vector<BatchRecord> batches;
    /** Per-replica usage, in replica order. */
    std::vector<ReplicaUsage> replicas;
    /** Served request count (independent of record retention). */
    std::size_t requestCount = 0;
    /** Dispatched batch count (independent of record retention). */
    std::size_t batchCount = 0;
    /** Total samples served. */
    std::uint64_t totalSamples = 0;
    std::size_t deadlineMisses = 0;
    /** Requests shed by admission control (never served). */
    std::size_t shedRequests = 0;
    /** Sheds charged to the queue-depth bound. */
    std::size_t shedByDepth = 0;
    /** Sheds charged to an unmeetable deadline at enqueue. */
    std::size_t shedByDeadline = 0;
    /** Sheds that happened while at least one replica was down
     *  (capacity loss, not pure overload; fault runs only). */
    std::size_t shedDegraded = 0;
    /** True when the run had admission control enabled. */
    bool admissionControl = false;
    /** True when a fault model or retry policy was active; gates
     *  the availability section so dormant runs keep their exact
     *  report bytes. */
    bool faultReport = false;
    /** True when the network-switch penalty model was active. */
    bool switchReport = false;
    /** True when latencies were summarized by the P2 estimator. */
    bool streamingStats = false;
    /** True when throughput uses the active-window definition. */
    bool activeWindow = false;
    /** Earliest request arrival the run observed. */
    double firstArrivalUs = 0.0;
    /** Exact-mode latency samples, in completion order. */
    std::vector<double> latencySamples;
    /** Exact-mode queueing samples, in completion order. */
    std::vector<double> queueSamples;
    /** Streaming-mode latency summary (streamingStats only). */
    StreamingSummary latencyStream;
    /** Streaming-mode queueing summary (streamingStats only). */
    StreamingSummary queueStream;
    /** Virtual time of the last batch completion. */
    double makespanUs = 0.0;
    /** Summed simulated energy of every dispatched batch. */
    double energyJ = 0.0;
    /** Artifact-cache misses charged to this run (resolved by a
     *  compile or, equivalently, a persistent-store load -- so a
     *  warm store does not change report bytes). */
    std::size_t compiles = 0;
    /** Artifact-cache hits observed by this run. */
    std::size_t cacheHits = 0;
    /** Distinct (class, network, batch-size) simulations added. */
    std::size_t distinctBatchShapes = 0;

    // Availability accounting (fault runs; see docs/serving.md).
    // The identity requestsIssued == requestCount + shedRequests +
    // requestsAbandoned holds exactly on every run.
    /** Distinct requests that entered the system. */
    std::size_t requestsIssued = 0;
    /** Times a request was in a fault-destroyed dispatch (one
     *  request can be lost more than once). */
    std::size_t requestLossEvents = 0;
    /** Requests lost for good: retries exhausted, denied by the
     *  retry budget, or stranded on a permanently dead fleet. */
    std::size_t requestsAbandoned = 0;
    /** Requests that were lost at least once and then served. */
    std::size_t requestsRecovered = 0;
    /** Re-dispatches issued by the retry policy. */
    std::size_t retriesIssued = 0;
    /** Requests covered by a hedged duplicate dispatch. */
    std::size_t hedgesIssued = 0;
    /** Hedged requests whose hedge completed first. */
    std::size_t hedgesWon = 0;
    /** Hedges cancelled because the primary completed first. */
    std::size_t hedgesCancelled = 0;
    /** Hedges destroyed by a fault on the hedge replica. */
    std::size_t hedgesLost = 0;
    /** Dispatches destroyed by a replica dying mid-compute. */
    std::size_t lostBatches = 0;
    /** Summed per-replica down time within [0, makespan]. */
    double fleetDownUs = 0.0;
    /** Latest outage recovery at or before the makespan. */
    double lastRecoveryUs = 0.0;
    /** Makespan minus the last recovery: how long the fleet took to
     *  drain the backlog after its final outage ended. */
    double drainAfterRecoveryUs = 0.0;
    /** Batches whose replica had to reload weights for a different
     *  network (switch-penalty runs only). */
    std::size_t networkSwitches = 0;
    /** Total switch penalty charged across the run. */
    double switchPenaltyTotalUs = 0.0;

    Percentiles latencyUs() const;
    Percentiles queueUs() const;
    /**
     * Wall the throughput ratios divide by: the active window when
     * activeWindow is set, the whole virtual timeline otherwise.
     */
    double throughputWindowUs() const;
    double requestsPerSec() const;
    double samplesPerSec() const;
    /** Offered load: issued requests over the throughput window. */
    double offeredRequestsPerSec() const;
    /** Served fraction of the issued requests (goodput / offered). */
    double goodput() const;
    /** Mean fleet up-fraction over [0, makespan]. */
    double fleetAvailability() const;
    /** Mean occupied fraction of the dispatched batches. */
    double batchFill() const;
    /**
     * True when the run used fleet-era features (R > 1 or a
     * non-fifo scheduler); gates the report's new fields so a
     * one-replica fifo run stays byte-identical to the
     * pre-scheduler engine.
     */
    bool fleetReport() const;

    /**
     * Machine-readable dump. Deliberately excludes the worker-thread
     * count so output is byte-identical across thread counts;
     * @p per_request additionally embeds every request record.
     */
    std::string json(bool per_request = false) const;
};

/**
 * Serving front-end over a replica fleet; see file docs. Not
 * thread-safe: one engine serves one workload at a time (the
 * internal worker pool is an implementation detail).
 */
class ServingEngine
{
  public:
    /**
     * Serve @p spec on opts.replicas identical replicas; the
     * catalog defaults to the eight paper benchmarks.
     */
    explicit ServingEngine(PlatformSpec spec, ServeOptions opts = {});
    /**
     * Serve a heterogeneous fleet, one replica per spec (any
     * registered kinds; opts.replicas must stay 1 unless the fleet
     * has a single spec).
     */
    ServingEngine(std::vector<PlatformSpec> fleet, ServeOptions opts = {});
    ServingEngine(ServingEngine &&) = default;

    /** Replace the network catalog (tests use tiny networks). */
    void setCatalog(std::vector<zoo::Benchmark> catalog);

    /** The coalescing limit in samples (option or fleet batch). */
    unsigned maxBatch() const;

    /** Replicas behind the queue. */
    std::size_t replicaCount() const { return replicas_.size(); }

    /** Serve an arrival-ordered open-loop trace to completion. */
    ServeReport run(const std::vector<InferenceRequest> &trace);

    /** Run the closed-loop benchmark @p spec describes. */
    ServeReport runClosedLoop(const ClosedLoopSpec &spec);

  private:
    class LoopContext;

    /** One distinct platform configuration; replicas share these so
     *  R identical replicas compile and simulate each shape once. */
    struct PlatformClass
    {
        PlatformSpec spec;
        /** Built platform per batch size (batch binds at build). */
        std::map<unsigned, std::unique_ptr<Platform>> platforms;
        /**
         * Memoized simulation per (network id, batch-size): indexed
         * by the interned network id, then keyed by batch, so the
         * hot planning loop never builds a string key.
         */
        std::vector<std::map<unsigned, RunStats>> memo;
    };

    /** Sentinel for "no network served yet" (a cold replica). */
    static constexpr unsigned kNoNetwork = ~0u;

    struct Replica
    {
        std::size_t cls = 0;
        double freeAt = 0.0;
        std::size_t batches = 0;
        std::uint64_t samples = 0;
        double busyUs = 0.0;
        double energyJ = 0.0;
        /** Interned id of the last network dispatched here (switch
         *  penalty and warm-up accounting). */
        unsigned lastNetId = kNoNetwork;
        /** Dispatches a fault destroyed on this replica. */
        std::size_t lostBatches = 0;
        /** Compute time lost to destroyed or cancelled dispatches. */
        double wastedUs = 0.0;
    };

    /** Interned id of a catalog network; fatal when unknown. */
    unsigned networkId(const std::string &name) const;
    const zoo::Benchmark &benchmark(const std::string &name) const;
    const Network &variant(const zoo::Benchmark &bench,
                           const PlatformSpec &spec) const;
    const Platform &platformFor(std::size_t cls, unsigned batch);
    const RunStats &statsFor(std::size_t cls, unsigned netId,
                             unsigned batch);
    /** Min simulated latency over classes with an up, free replica
     *  (down replicas are excluded from the scheduler's oracle). */
    double cheapestFreeLatencyUs(unsigned netId, unsigned batch,
                                 double now);
    /** Earliest virtual time any replica frees up. */
    double minFreeAtUs() const;
    /** Earliest virtual time any replica is both free and up
     *  (equals minFreeAtUs without an active fault model). */
    double earliestReadyUs();
    /** Replicas not inside a fault outage at @p now. */
    std::size_t upReplicaCount(double now);
    std::size_t memoSize() const;
    std::string fleetName() const;
    void validateRequest(const InferenceRequest &req, unsigned cap) const;
    void precompile(const std::vector<std::string> &networks);
    void internCatalog();
    template <typename OnFinish, typename OnShed>
    ServeReport runLoop(std::vector<InferenceRequest> initial,
                        const std::vector<std::string> &warmNetworks,
                        OnFinish &&onFinish, OnShed &&onShed);

    ServeOptions opts_;
    std::vector<zoo::Benchmark> catalog_;
    /** Catalog name -> dense id (index into catalog_ and memo). */
    std::unordered_map<std::string, unsigned> networkIds_;
    ArtifactCache *cache_;
    std::vector<PlatformClass> classes_;
    std::vector<Replica> replicas_;
    /** The running fault timeline; non-null only inside a runLoop
     *  with an active fault model. */
    FaultTimeline *timeline_ = nullptr;
};

} // namespace serve
} // namespace bitfusion

#endif // BITFUSION_SERVE_SERVING_ENGINE_H
