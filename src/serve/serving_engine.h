/**
 * @file
 * The dynamic-batching serving layer over Platform::run.
 *
 * The ServingEngine fronts one simulated platform instance with a
 * request queue on a virtual clock: clients submit
 * InferenceRequest{network, batch-of-inputs, deadline}, the batcher
 * coalesces compatible requests (same network, FIFO order) into
 * dynamic batches up to the platform's best batch size, and every
 * dispatch charges the platform's simulated batch latency. The
 * engine records per-request queueing and compute latency, so a run
 * reports p50/p95/p99 latency, throughput, batch fill, deadline
 * misses, and energy per platform.
 *
 * Batching policy (head-of-line, timer-based): when the platform
 * frees up, the oldest queued request picks the batch's network;
 * queued requests of that network join in FIFO order while they fit.
 * If the batch is not full and a batching window (maxWaitUs) is
 * configured, dispatch waits for more arrivals until the window
 * expires -- but never past any member's deadline -- and fires early
 * the moment the batch fills. Requests are coalesced whole (a
 * request's samples never split across batches).
 *
 * Costs come from the same Platform::run every figure uses, with
 * compiled artifacts resolved through the process-level
 * ArtifactCache (shared with the sweep runner), and the simulated
 * latency of a (network, batch-size) pair memoized after its first
 * dispatch. The worker pool (runner/parallel_for.h) precompiles
 * every distinct network at the full batch size up front; odd-sized
 * remainder batches compile on first dispatch.
 *
 * Determinism: the event loop is serial on the virtual clock and the
 * platform is a pure function of its inputs, so for a fixed trace
 * (or seed) the report -- including its JSON dump -- is byte-
 * identical for any worker-thread count.
 */

#ifndef BITFUSION_SERVE_SERVING_ENGINE_H
#define BITFUSION_SERVE_SERVING_ENGINE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/platform_registry.h"
#include "src/core/stats.h"
#include "src/dnn/model_zoo.h"
#include "src/serve/trace.h"

namespace bitfusion {

class ArtifactCache;

namespace serve {

/** Engine configuration. */
struct ServeOptions
{
    /** Precompile worker threads; 0 = hardware concurrency. */
    unsigned threads = 0;
    /** Phase-time composition (core/layer_walk.h). */
    TimingModel timing = TimingModel::Simple;
    /**
     * Largest coalesced batch in samples; 0 = the platform's
     * configured batch size (the paper's best batch).
     */
    unsigned maxBatch = 0;
    /**
     * Batching window: how long a dispatch may wait for more
     * requests past the head request's arrival. 0 = dispatch
     * immediately with whatever has arrived.
     */
    double maxWaitUs = 0.0;
    /**
     * Compiled-artifact cache; nullptr uses the process-level
     * ArtifactCache::process() shared with the sweep runner.
     */
    ArtifactCache *cache = nullptr;
};

/** Closed-loop benchmark: clients with one outstanding request. */
struct ClosedLoopSpec
{
    /** Concurrent clients; each replaces its request on completion. */
    unsigned clients = 4;
    /** Total requests to serve before draining. */
    std::size_t requests = 256;
    /** Samples per request. */
    unsigned samples = 1;
    /** PRNG seed for the per-request network choice. */
    std::uint64_t seed = 1;
    /** Network mix; empty = the engine's whole catalog. */
    std::vector<std::string> networks;
};

/** One served request with its measured timeline. */
struct RequestRecord
{
    InferenceRequest request;
    /** Virtual time the batch containing this request started. */
    double dispatchUs = 0.0;
    /** Virtual time the batch finished. */
    double finishUs = 0.0;
    /** Total samples of the coalesced batch it rode in. */
    unsigned batchSamples = 0;
    /** True when dispatch happened after the request's deadline. */
    bool deadlineMissed = false;

    /** Time spent queued before dispatch. */
    double queueUs() const { return dispatchUs - request.arrivalUs; }
    /** End-to-end latency (queueing + compute). */
    double latencyUs() const { return finishUs - request.arrivalUs; }
};

/** One dispatched batch. */
struct BatchRecord
{
    std::string network;
    /** Coalesced sample count (the platform batch it ran at). */
    unsigned samples = 0;
    /** Requests coalesced into this batch. */
    std::size_t requests = 0;
    double dispatchUs = 0.0;
    /** Simulated compute latency of the batch. */
    double latencyUs = 0.0;
};

/** Latency summary (nearest-rank percentiles). */
struct Percentiles
{
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double mean = 0.0;
    double max = 0.0;
};

/** Nearest-rank percentile summary of @p values (exposed for tests). */
Percentiles percentiles(std::vector<double> values);

/** Everything one serving run measured. */
struct ServeReport
{
    /** "open-loop" or "closed-loop". */
    std::string mode;
    /** Platform display name. */
    std::string platform;
    TimingModel timing = TimingModel::Simple;
    unsigned maxBatch = 0;
    double maxWaitUs = 0.0;

    /** Served requests in id order. */
    std::vector<RequestRecord> requests;
    /** Dispatched batches in dispatch order. */
    std::vector<BatchRecord> batches;
    /** Total samples served. */
    std::uint64_t totalSamples = 0;
    std::size_t deadlineMisses = 0;
    /** Virtual time of the last batch completion. */
    double makespanUs = 0.0;
    /** Summed simulated energy of every dispatched batch. */
    double energyJ = 0.0;
    /** Artifact-cache misses charged to this run. */
    std::size_t compiles = 0;
    /** Artifact-cache hits observed by this run. */
    std::size_t cacheHits = 0;
    /** Distinct (network, batch-size) simulations this run added. */
    std::size_t distinctBatchShapes = 0;

    Percentiles latencyUs() const;
    Percentiles queueUs() const;
    double requestsPerSec() const;
    double samplesPerSec() const;
    /** Mean occupied fraction of the dispatched batches. */
    double batchFill() const;

    /**
     * Machine-readable dump. Deliberately excludes the worker-thread
     * count so output is byte-identical across thread counts;
     * @p per_request additionally embeds every request record.
     */
    std::string json(bool per_request = false) const;
};

/**
 * Serving front-end over one platform; see file docs. Not
 * thread-safe: one engine serves one workload at a time (the
 * internal worker pool is an implementation detail).
 */
class ServingEngine
{
  public:
    /**
     * @p spec is the served platform (any registered kind); the
     * catalog defaults to the eight paper benchmarks.
     */
    explicit ServingEngine(PlatformSpec spec, ServeOptions opts = {});
    ServingEngine(ServingEngine &&) = default;

    /** Replace the network catalog (tests use tiny networks). */
    void setCatalog(std::vector<zoo::Benchmark> catalog);

    /** The coalescing limit in samples (option or platform batch). */
    unsigned maxBatch() const;

    /** Serve an arrival-ordered open-loop trace to completion. */
    ServeReport run(const std::vector<InferenceRequest> &trace);

    /** Run the closed-loop benchmark @p spec describes. */
    ServeReport runClosedLoop(const ClosedLoopSpec &spec);

  private:
    const zoo::Benchmark &benchmark(const std::string &name) const;
    const Network &variant(const zoo::Benchmark &bench) const;
    const Platform &platformFor(unsigned batch);
    const RunStats &statsFor(const std::string &network, unsigned batch);
    void precompile(const std::vector<std::string> &networks);
    template <typename OnFinish>
    ServeReport runLoop(std::vector<InferenceRequest> initial,
                        const std::vector<std::string> &warmNetworks,
                        OnFinish &&onFinish);

    PlatformSpec spec_;
    ServeOptions opts_;
    std::vector<zoo::Benchmark> catalog_;
    ArtifactCache *cache_;
    /** Built platform per batch size (platforms bind batch early). */
    std::map<unsigned, std::unique_ptr<Platform>> platforms_;
    /** Memoized simulation per (network, batch-size). */
    std::map<std::pair<std::string, unsigned>, RunStats> memo_;
};

} // namespace serve
} // namespace bitfusion

#endif // BITFUSION_SERVE_SERVING_ENGINE_H
