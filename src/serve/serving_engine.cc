/**
 * @file
 * The virtual-clock event loop behind the serving engine: replica
 * selection and cheapest-platform routing, scheduler-planned
 * batches, memoized platform runs, and the report aggregation.
 */

#include "src/serve/serving_engine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <queue>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/common/prng.h"
#include "src/core/artifact_cache.h"
#include "src/runner/parallel_for.h"
#include "src/serve/scheduler.h"

namespace bitfusion {
namespace serve {

namespace {

/** Min-heap ordering of future arrivals by (arrival, id). */
struct ArrivalAfter
{
    bool
    operator()(const InferenceRequest &a,
               const InferenceRequest &b) const
    {
        if (a.arrivalUs != b.arrivalUs)
            return a.arrivalUs > b.arrivalUs;
        return a.id > b.id;
    }
};

using FutureQueue =
    std::priority_queue<InferenceRequest,
                        std::vector<InferenceRequest>, ArrivalAfter>;

json::Value
percentilesJson(const Percentiles &p)
{
    return json::Value::object()
        .set("p50", p.p50)
        .set("p95", p.p95)
        .set("p99", p.p99)
        .set("mean", p.mean)
        .set("max", p.max);
}

Percentiles
streamPercentiles(const StreamingSummary &stream)
{
    Percentiles p;
    p.p50 = stream.p50();
    p.p95 = stream.p95();
    p.p99 = stream.p99();
    p.mean = stream.mean();
    p.max = stream.max();
    return p;
}

/** Replicas whose specs describe the same machine share one
 *  PlatformClass (one compile and one memoized simulation per
 *  shape). Class identity is the spec itself: kind, display name,
 *  network variant, effective batch, and field-for-field config
 *  equality through the type-erased handle, so two hand-built specs
 *  that share a display name but differ in config land in distinct
 *  classes instead of silently merging. */
bool
sameClass(const PlatformSpec &a, const PlatformSpec &b)
{
    return a.kind == b.kind && a.name == b.name &&
           a.runsQuantized == b.runsQuantized &&
           a.effectiveBatch() == b.effectiveBatch() &&
           a.config == b.config;
}

/** Remove the dispatched members from the queue with one stable
 *  span erase: survivors inside [first, last] compact down, then
 *  the gap at the span's tail erases once. deque::erase shifts
 *  whichever side of the deque is smaller, so the common
 *  front-clustered FIFO batch costs O(members) amortized instead of
 *  the old rebuild-the-whole-deque O(queue). */
void
eraseMembers(std::deque<InferenceRequest> &queue,
             std::vector<std::size_t> members)
{
    std::sort(members.begin(), members.end());
    for (std::size_t m = 1; m < members.size(); ++m)
        BF_ASSERT(members[m] != members[m - 1]);
    const std::size_t first = members.front();
    const std::size_t last = members.back();
    if (last - first + 1 == members.size()) {
        // Contiguous members: erase the span directly.
        queue.erase(queue.begin() +
                        static_cast<std::ptrdiff_t>(first),
                    queue.begin() +
                        static_cast<std::ptrdiff_t>(last + 1));
        return;
    }
    std::size_t write = first;
    std::size_t next = 0;
    for (std::size_t i = first; i <= last; ++i) {
        if (next < members.size() && members[next] == i) {
            ++next;
            continue;
        }
        queue[write++] = std::move(queue[i]);
    }
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(write),
                queue.begin() +
                    static_cast<std::ptrdiff_t>(last + 1));
}

} // namespace

// ---------------------------------------------------------- Percentiles

Percentiles
percentiles(std::vector<double> values)
{
    Percentiles p;
    if (values.empty())
        return p;
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    const auto rank = [&](double q) {
        // Nearest-rank: the smallest value with at least q% of the
        // sample at or below it.
        std::size_t idx = static_cast<std::size_t>(
            std::ceil(q / 100.0 * static_cast<double>(n)));
        idx = std::max<std::size_t>(idx, 1);
        return values[std::min(idx, n) - 1];
    };
    p.p50 = rank(50.0);
    p.p95 = rank(95.0);
    p.p99 = rank(99.0);
    double sum = 0.0;
    for (double v : values)
        sum += v;
    p.mean = sum / static_cast<double>(n);
    p.max = values.back();
    return p;
}

// ---------------------------------------------------------- ServeReport

Percentiles
ServeReport::latencyUs() const
{
    if (streamingStats)
        return streamPercentiles(latencyStream);
    if (!latencySamples.empty() || requests.empty())
        return percentiles(latencySamples);
    // A hand-assembled report (tests) with records but no sample
    // vector still summarizes.
    std::vector<double> values;
    values.reserve(requests.size());
    for (const auto &r : requests)
        values.push_back(r.latencyUs());
    return percentiles(std::move(values));
}

Percentiles
ServeReport::queueUs() const
{
    if (streamingStats)
        return streamPercentiles(queueStream);
    if (!queueSamples.empty() || requests.empty())
        return percentiles(queueSamples);
    std::vector<double> values;
    values.reserve(requests.size());
    for (const auto &r : requests)
        values.push_back(r.queueUs());
    return percentiles(std::move(values));
}

double
ServeReport::throughputWindowUs() const
{
    // The legacy definition divides by the whole virtual timeline
    // (time 0 to makespan), which understates throughput for parsed
    // traces whose first arrival is far from 0; the opt-in active
    // window divides by first arrival -> makespan instead.
    if (!activeWindow)
        return makespanUs;
    return std::max(0.0, makespanUs - firstArrivalUs);
}

double
ServeReport::requestsPerSec() const
{
    const double windowUs = throughputWindowUs();
    if (windowUs <= 0.0)
        return 0.0;
    return static_cast<double>(requestCount) / (windowUs * 1e-6);
}

double
ServeReport::samplesPerSec() const
{
    const double windowUs = throughputWindowUs();
    if (windowUs <= 0.0)
        return 0.0;
    return static_cast<double>(totalSamples) / (windowUs * 1e-6);
}

double
ServeReport::offeredRequestsPerSec() const
{
    const double windowUs = throughputWindowUs();
    if (windowUs <= 0.0)
        return 0.0;
    return static_cast<double>(requestsIssued) / (windowUs * 1e-6);
}

double
ServeReport::goodput() const
{
    if (requestsIssued == 0)
        return 0.0;
    return static_cast<double>(requestCount) /
           static_cast<double>(requestsIssued);
}

double
ServeReport::fleetAvailability() const
{
    if (replicas.empty() || makespanUs <= 0.0)
        return 1.0;
    return 1.0 - fleetDownUs / (makespanUs *
                                static_cast<double>(replicas.size()));
}

double
ServeReport::batchFill() const
{
    if (batchCount == 0 || maxBatch == 0)
        return 0.0;
    return static_cast<double>(totalSamples) /
           (static_cast<double>(batchCount) *
            static_cast<double>(maxBatch));
}

bool
ServeReport::fleetReport() const
{
    return replicas.size() > 1 || scheduler != "fifo";
}

std::string
ServeReport::json(bool per_request) const
{
    // The fleet-era fields are gated so a one-replica fifo report
    // keeps the engine's original JSON shape byte-for-byte; the
    // admission / streaming / active-window fields are likewise
    // gated on their features so every pre-existing golden stays
    // byte-identical.
    const bool fleet = fleetReport();

    json::Value doc = json::Value::object();
    doc.set("serve", mode).set("platform", platform);
    if (fleet) {
        doc.set("scheduler", scheduler);
        if (sloBudgetUs > 0.0)
            doc.set("slo_budget_us", sloBudgetUs);
    }
    doc.set("timing", toString(timing))
        .set("max_batch", maxBatch)
        .set("max_wait_us", maxWaitUs)
        .set("requests", static_cast<std::uint64_t>(requestCount))
        .set("samples", totalSamples)
        .set("batches", static_cast<std::uint64_t>(batchCount))
        .set("batch_fill", batchFill())
        .set("distinct_batch_shapes",
             static_cast<std::uint64_t>(distinctBatchShapes))
        .set("makespan_us", makespanUs);
    if (activeWindow) {
        doc.set("first_arrival_us", firstArrivalUs)
            .set("active_window_us", throughputWindowUs());
    }
    doc.set("requests_per_sec", requestsPerSec())
        .set("samples_per_sec", samplesPerSec());
    if (streamingStats)
        doc.set("streaming_stats", true);
    doc.set("latency_us", percentilesJson(latencyUs()))
        .set("queue_us", percentilesJson(queueUs()))
        .set("deadline_misses",
             static_cast<std::uint64_t>(deadlineMisses));
    if (admissionControl) {
        doc.set("shed", static_cast<std::uint64_t>(shedRequests))
            .set("shed_by_depth",
                 static_cast<std::uint64_t>(shedByDepth))
            .set("shed_by_deadline",
                 static_cast<std::uint64_t>(shedByDeadline));
        if (faultReport) {
            doc.set("shed_degraded",
                    static_cast<std::uint64_t>(shedDegraded));
        }
    }
    if (switchReport) {
        doc.set("network_switches",
                static_cast<std::uint64_t>(networkSwitches))
            .set("switch_penalty_total_us", switchPenaltyTotalUs);
    }
    doc.set("energy_j", energyJ)
        .set("energy_per_sample_j",
             totalSamples != 0
                 ? energyJ / static_cast<double>(totalSamples)
                 : 0.0);
    if (fleet || faultReport) {
        json::Value reps = json::Value::array();
        for (const auto &r : replicas) {
            json::Value rep =
                json::Value::object()
                    .set("platform", r.platform)
                    .set("batches",
                         static_cast<std::uint64_t>(r.batches))
                    .set("samples", r.samples)
                    .set("busy_us", r.busyUs)
                    .set("utilization", r.utilization)
                    .set("energy_j", r.energyJ);
            if (faultReport) {
                rep.set("down_us", r.downUs)
                    .set("lost_batches",
                         static_cast<std::uint64_t>(r.lostBatches))
                    .set("wasted_us", r.wastedUs);
            }
            reps.push(std::move(rep));
        }
        doc.set("replicas", std::move(reps));
    }
    if (faultReport) {
        doc.set(
            "availability",
            json::Value::object()
                .set("requests_issued",
                     static_cast<std::uint64_t>(requestsIssued))
                .set("requests_served",
                     static_cast<std::uint64_t>(requestCount))
                .set("requests_shed",
                     static_cast<std::uint64_t>(shedRequests))
                .set("requests_abandoned",
                     static_cast<std::uint64_t>(requestsAbandoned))
                .set("requests_recovered",
                     static_cast<std::uint64_t>(requestsRecovered))
                .set("request_loss_events",
                     static_cast<std::uint64_t>(requestLossEvents))
                .set("batches_lost",
                     static_cast<std::uint64_t>(lostBatches))
                .set("retries_issued",
                     static_cast<std::uint64_t>(retriesIssued))
                .set("hedges_issued",
                     static_cast<std::uint64_t>(hedgesIssued))
                .set("hedges_won",
                     static_cast<std::uint64_t>(hedgesWon))
                .set("hedges_cancelled",
                     static_cast<std::uint64_t>(hedgesCancelled))
                .set("hedges_lost",
                     static_cast<std::uint64_t>(hedgesLost))
                .set("fleet_down_us", fleetDownUs)
                .set("fleet_availability", fleetAvailability())
                .set("offered_rps", offeredRequestsPerSec())
                .set("goodput", goodput())
                .set("last_recovery_us", lastRecoveryUs)
                .set("drain_after_recovery_us",
                     drainAfterRecoveryUs));
    }
    doc.set("cache", json::Value::object()
                         .set("compiles",
                              static_cast<std::uint64_t>(compiles))
                         .set("hits", static_cast<std::uint64_t>(
                                          cacheHits)));

    if (per_request) {
        json::Value recs = json::Value::array();
        for (const auto &r : requests) {
            json::Value rec =
                json::Value::object()
                    .set("id", r.request.id)
                    .set("network", r.request.network)
                    .set("samples", r.request.samples)
                    .set("arrival_us", r.request.arrivalUs)
                    .set("dispatch_us", r.dispatchUs)
                    .set("finish_us", r.finishUs)
                    .set("batch_samples", r.batchSamples);
            if (fleet)
                rec.set("replica", r.replica);
            rec.set("deadline_missed", r.deadlineMissed);
            if (faultReport) {
                rec.set("attempts", r.attempts)
                    .set("hedged", r.hedged)
                    .set("recovered", r.recovered);
            }
            recs.push(std::move(rec));
        }
        doc.set("request_records", std::move(recs));
    }
    return doc.dump(2);
}

// -------------------------------------------------------- ServingEngine

ServingEngine::ServingEngine(PlatformSpec spec, ServeOptions opts)
    : ServingEngine(std::vector<PlatformSpec>{std::move(spec)},
                    std::move(opts))
{}

ServingEngine::ServingEngine(std::vector<PlatformSpec> fleet,
                             ServeOptions opts)
    : opts_(std::move(opts))
{
    if (fleet.empty())
        BF_FATAL("serving fleet must not be empty");
    if (opts_.replicas == 0)
        BF_FATAL("serving needs at least one replica");
    if (opts_.replicas > 1 && fleet.size() > 1) {
        BF_FATAL("give either one spec with ServeOptions.replicas or "
                 "an explicit fleet, not both");
    }
    if (fleet.size() == 1 && opts_.replicas > 1)
        fleet.resize(opts_.replicas, fleet.front());

    for (auto &spec : fleet) {
        std::size_t cls = classes_.size();
        for (std::size_t c = 0; c < classes_.size(); ++c) {
            if (sameClass(classes_[c].spec, spec)) {
                cls = c;
                break;
            }
        }
        if (cls == classes_.size()) {
            std::unique_ptr<Platform> built =
                PlatformRegistry::builtin().build(spec);
            classes_.emplace_back();
            const unsigned batch = spec.effectiveBatch();
            classes_.back().spec = std::move(spec);
            // Seed the built platform; platformFor reuses it.
            classes_.back().platforms.emplace(batch, std::move(built));
        }
        Replica replica;
        replica.cls = cls;
        replicas_.push_back(replica);
    }

    cache_ = opts_.cache != nullptr ? opts_.cache
                                    : &ArtifactCache::process();
    if (opts_.store != nullptr)
        cache_->attachStore(opts_.store);
    for (const auto &bench : zoo::all())
        catalog_.push_back(bench);
    internCatalog();
}

void
ServingEngine::internCatalog()
{
    networkIds_.clear();
    networkIds_.reserve(catalog_.size());
    for (std::size_t i = 0; i < catalog_.size(); ++i)
        networkIds_.emplace(catalog_[i].name,
                            static_cast<unsigned>(i));
    for (auto &cls : classes_) {
        cls.memo.clear();
        cls.memo.resize(catalog_.size());
    }
}

void
ServingEngine::setCatalog(std::vector<zoo::Benchmark> catalog)
{
    if (catalog.empty())
        BF_FATAL("serving catalog must not be empty");
    catalog_ = std::move(catalog);
    internCatalog();
}

unsigned
ServingEngine::maxBatch() const
{
    if (opts_.maxBatch != 0)
        return opts_.maxBatch;
    unsigned best = 0;
    for (const auto &cls : classes_)
        best = std::max(best, cls.spec.effectiveBatch());
    return best;
}

unsigned
ServingEngine::networkId(const std::string &name) const
{
    const auto it = networkIds_.find(name);
    if (it == networkIds_.end())
        BF_FATAL("serving catalog has no network '", name, "'");
    return it->second;
}

const zoo::Benchmark &
ServingEngine::benchmark(const std::string &name) const
{
    return catalog_[networkId(name)];
}

const Network &
ServingEngine::variant(const zoo::Benchmark &bench,
                       const PlatformSpec &spec) const
{
    return spec.runsQuantized ? bench.quantized : bench.baseline;
}

const Platform &
ServingEngine::platformFor(std::size_t cls, unsigned batch)
{
    PlatformClass &entry = classes_[cls];
    auto it = entry.platforms.find(batch);
    if (it == entry.platforms.end()) {
        PlatformSpec spec = entry.spec;
        spec.batch = batch;
        it = entry.platforms
                 .emplace(batch, PlatformRegistry::builtin().build(spec))
                 .first;
    }
    return *it->second;
}

const RunStats &
ServingEngine::statsFor(std::size_t cls, unsigned netId,
                        unsigned batch)
{
    PlatformClass &entry = classes_[cls];
    std::map<unsigned, RunStats> &shapes = entry.memo[netId];
    auto it = shapes.find(batch);
    if (it != shapes.end())
        return it->second;

    const Platform &platform = platformFor(cls, batch);
    const Network &net = variant(catalog_[netId], entry.spec);
    const ArtifactCache::Outcome out = cache_->get(platform, net);
    RunOptions runOpts;
    runOpts.timing = opts_.timing;
    runOpts.artifact = out.artifact.get();
    return shapes.emplace(batch, platform.run(net, runOpts))
        .first->second;
}

double
ServingEngine::cheapestFreeLatencyUs(unsigned netId, unsigned batch,
                                     double now)
{
    // Only classes with a replica free (and outside any fault
    // outage) at the planning time can receive the batch, so the
    // estimate handed to schedulers is an upper bound on the routed
    // latency: the free set only grows between planning and
    // dispatch, and routing takes its minimum.
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < classes_.size(); ++c) {
        bool free = false;
        for (std::size_t r = 0; r < replicas_.size(); ++r) {
            if (replicas_[r].cls != c || replicas_[r].freeAt > now)
                continue;
            if (timeline_ != nullptr && !timeline_->upAt(r, now))
                continue;
            free = true;
            break;
        }
        if (!free)
            continue;
        best = std::min(best, statsFor(c, netId, batch).seconds() * 1e6);
    }
    return best;
}

double
ServingEngine::minFreeAtUs() const
{
    double earliest = replicas_.front().freeAt;
    for (const auto &replica : replicas_)
        earliest = std::min(earliest, replica.freeAt);
    return earliest;
}

double
ServingEngine::earliestReadyUs()
{
    if (timeline_ == nullptr)
        return minFreeAtUs();
    double earliest = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
        earliest = std::min(
            earliest, timeline_->upAfter(r, replicas_[r].freeAt));
    }
    return earliest;
}

std::size_t
ServingEngine::upReplicaCount(double now)
{
    if (timeline_ == nullptr)
        return replicas_.size();
    std::size_t up = 0;
    for (std::size_t r = 0; r < replicas_.size(); ++r)
        up += timeline_->upAt(r, now) ? 1 : 0;
    return up;
}

std::size_t
ServingEngine::memoSize() const
{
    std::size_t total = 0;
    for (const auto &cls : classes_) {
        for (const auto &shapes : cls.memo)
            total += shapes.size();
    }
    return total;
}

std::string
ServingEngine::fleetName() const
{
    if (replicas_.size() == 1)
        return classes_.front().spec.name;
    std::string name;
    for (std::size_t c = 0; c < classes_.size(); ++c) {
        std::size_t count = 0;
        for (const auto &r : replicas_)
            count += r.cls == c ? 1 : 0;
        if (!name.empty())
            name += " + ";
        name += classes_[c].spec.name;
        if (count > 1)
            name += " x" + std::to_string(count);
    }
    return name;
}

void
ServingEngine::validateRequest(const InferenceRequest &req,
                               unsigned cap) const
{
    if (req.samples == 0 || req.samples > cap) {
        BF_FATAL("request ", req.id, " has ", req.samples,
                 " samples; the engine coalesces whole requests "
                 "up to max batch ",
                 cap);
    }
}

void
ServingEngine::precompile(const std::vector<std::string> &networks)
{
    std::set<std::string> names(networks.begin(), networks.end());

    // Resolve every named network (fatal on unknown) and build each
    // class's full-batch platform before fanning out; the workers
    // then only touch the thread-safe artifact cache.
    std::vector<std::pair<const Platform *, const Network *>> tasks;
    for (std::size_t c = 0; c < classes_.size(); ++c) {
        const Platform &platform = platformFor(c, maxBatch());
        for (const auto &name : names) {
            tasks.emplace_back(&platform,
                               &variant(benchmark(name), classes_[c].spec));
        }
    }

    parallelFor(tasks.size(),
                resolveThreads(opts_.threads, tasks.size()),
                [&](std::size_t i) {
                    cache_->get(*tasks[i].first, *tasks[i].second);
                });
}

/** The scheduler's window into one runLoop's queues. */
class ServingEngine::LoopContext : public SchedulerContext
{
  public:
    LoopContext(ServingEngine &engine, std::deque<InferenceRequest> &queue,
                FutureQueue &future, unsigned cap)
        : engine_(engine), queue_(queue), future_(future), cap_(cap)
    {}

    const std::deque<InferenceRequest> &queue() const override
    {
        return queue_;
    }

    const InferenceRequest *nextArrival() const override
    {
        return future_.empty() ? nullptr : &future_.top();
    }

    bool
    absorbNextArrival() override
    {
        BF_ASSERT(!future_.empty());
        return admit_();
    }

    double batchLatencyUs(const std::string &network,
                          unsigned samples) override
    {
        return engine_.cheapestFreeLatencyUs(
            engine_.networkId(network), samples, now_);
    }

    unsigned maxBatch() const override { return cap_; }
    double windowUs() const override { return engine_.opts_.maxWaitUs; }
    double sloBudgetUs() const override { return engine_.opts_.sloBudgetUs; }
    std::size_t totalReplicas() const override
    {
        return engine_.replicas_.size();
    }
    std::size_t upReplicas() const override
    {
        return engine_.upReplicaCount(now_);
    }

    /** The engine advances this to each plan's virtual time. */
    void setNow(double now) { now_ = now; }
    /** runLoop's admission gate (pops the top future arrival). */
    void setAdmit(std::function<bool()> admit)
    {
        admit_ = std::move(admit);
    }

  private:
    ServingEngine &engine_;
    std::deque<InferenceRequest> &queue_;
    FutureQueue &future_;
    unsigned cap_;
    double now_ = 0.0;
    std::function<bool()> admit_;
};

template <typename OnFinish, typename OnShed>
ServeReport
ServingEngine::runLoop(std::vector<InferenceRequest> initial,
                       const std::vector<std::string> &warmNetworks,
                       OnFinish &&onFinish, OnShed &&onShed)
{
    const unsigned cap = maxBatch();
    BF_ASSERT(cap > 0);
    // make() fatals on an unknown name, so find() is non-null; the
    // policy's own validate hook rejects mis-paired knobs.
    std::unique_ptr<Scheduler> scheduler =
        makeScheduler(opts_.scheduler);
    const SchedulerRegistry::Entry *policy =
        SchedulerRegistry::builtin().find(opts_.scheduler);
    if (policy->validate) {
        SchedulerKnobs knobs;
        knobs.maxWaitUs = opts_.maxWaitUs;
        knobs.sloBudgetUs = opts_.sloBudgetUs;
        policy->validate(knobs);
    }

    // The fault era: any fault source or retry/hedge knob switches
    // on loss handling and the availability report. Every new
    // branch below is gated on it (or on the timeline pointer) so a
    // dormant run takes exactly the pre-fault code path and keeps
    // its report bytes.
    const bool faultEra =
        opts_.faults.active() || opts_.retry.active();
    std::optional<FaultTimeline> timeline;
    if (faultEra) {
        opts_.faults.validate(replicas_.size());
        opts_.retry.validate();
        if (opts_.retry.hedgingEnabled() && replicas_.size() < 2) {
            BF_FATAL("hedged dispatch needs at least two replicas, "
                     "the fleet has ",
                     replicas_.size());
        }
        if (opts_.faults.active())
            timeline.emplace(opts_.faults, replicas_.size());
    }
    timeline_ = timeline ? &*timeline : nullptr;

    // Report "compiles" as misses this run resolved, whether by an
    // actual compile or by a persistent-store load: the count is
    // then a pure function of the workload, so a warm store leaves
    // the report -- and the goldens locking it -- byte-identical.
    const std::size_t compilesBefore =
        cache_->compileCount() + cache_->storeHitCount();
    const std::size_t hitsBefore = cache_->hitCount();
    const std::size_t shapesBefore = memoSize();
    precompile(warmNetworks);

    ServeReport report;
    report.platform = fleetName();
    report.scheduler = scheduler->name();
    report.timing = opts_.timing;
    report.maxBatch = cap;
    report.maxWaitUs = opts_.maxWaitUs;
    report.sloBudgetUs = opts_.sloBudgetUs;
    report.admissionControl =
        opts_.maxQueueDepth > 0 || opts_.shedUnmeetable;
    report.streamingStats = opts_.streamingStats;
    report.activeWindow = opts_.activeWindowStats;
    report.faultReport = faultEra;
    report.switchReport = opts_.switchPenaltyUs > 0.0;

    FutureQueue future(ArrivalAfter{}, std::move(initial));
    std::deque<InferenceRequest> queue;
    for (auto &replica : replicas_) {
        const std::size_t cls = replica.cls;
        replica = Replica{};
        replica.cls = cls;
    }
    LoopContext ctx(*this, queue, future, cap);

    double firstArrival = std::numeric_limits<double>::infinity();

    // Retry bookkeeping: a lost request re-enters the future queue
    // under its original id; this side table carries its first
    // arrival (a recovered request's latency spans every attempt)
    // and its consumed dispatches until it serves or is abandoned.
    struct RetryState
    {
        double originalArrivalUs = 0.0;
        /** Dispatches consumed (and lost) so far. */
        unsigned attempts = 0;
    };
    std::unordered_map<std::uint64_t, RetryState> retrying;
    // Seeded jitter for retry backoff, derived from the fault seed
    // and drawn in loss order (virtual-time order), so a fixed seed
    // reproduces every backoff bit-exactly.
    Prng retryJitter(Prng(opts_.faults.seed ^ 0x7265747279ULL).next());
    // Running p99 of completed batch latencies; the p99-derived
    // hedge delay trusts it after a short warmup.
    P2Quantile hedgeP99(0.99);
    const bool hedgeOnP99 = opts_.retry.hedgeP99Multiplier > 0.0;
    constexpr std::size_t kHedgeWarmup = 16;

    // Admission gate: pops the earliest future arrival and either
    // enqueues it (true) or sheds it (false). Depth shedding bounds
    // the pending queue; deadline shedding refuses a request whose
    // earliest possible dispatch -- max(arrival, earliest replica
    // free time) -- is already past its deadline, i.e. a guaranteed
    // miss. Sheds are reported separately from misses, and the
    // closed loop's onShed hands the shed client its next request.
    const auto tryAdmit = [&]() -> bool {
        InferenceRequest req = future.top();
        future.pop();
        validateRequest(req, cap);
        firstArrival = std::min(firstArrival, req.arrivalUs);
        if (faultEra) {
            // A re-entering retry was already admitted (and counted
            // issued) on its first arrival; it bypasses admission so
            // a degraded fleet cannot shed work it has accepted.
            if (retrying.find(req.id) != retrying.end()) {
                queue.push_back(std::move(req));
                return true;
            }
            ++report.requestsIssued;
        }
        bool depthShed = false;
        bool deadlineShed = false;
        if (opts_.maxQueueDepth > 0 &&
            queue.size() >= opts_.maxQueueDepth) {
            depthShed = true;
        } else if (opts_.shedUnmeetable && req.deadlineUs > 0.0) {
            // The dispatch oracle accounts for capacity loss: a
            // replica inside an outage cannot free up before it
            // recovers, so deadlines that only an up fleet could
            // meet shed here during the outage.
            deadlineShed = std::max(req.arrivalUs,
                                    earliestReadyUs()) > req.deadlineUs;
        }
        if (!depthShed && !deadlineShed) {
            queue.push_back(std::move(req));
            return true;
        }
        ++report.shedRequests;
        report.shedByDepth += depthShed ? 1 : 0;
        report.shedByDeadline += deadlineShed ? 1 : 0;
        if (timeline_ != nullptr &&
            timeline_->anyDownAt(req.arrivalUs))
            ++report.shedDegraded;
        const double shedAt =
            std::max(req.arrivalUs, earliestReadyUs());
        std::vector<InferenceRequest> replacements;
        onShed(req, shedAt, replacements);
        for (auto &r : replacements)
            future.push(std::move(r));
        return false;
    };
    ctx.setAdmit(tryAdmit);

    const auto absorb = [&](double now) {
        while (!future.empty() && future.top().arrivalUs <= now)
            tryAdmit();
    };

    while (!queue.empty() || !future.empty()) {
        // The earliest-ready replica sets the planning clock (ties
        // go to the lowest index); under faults "ready" means both
        // free of work and outside any outage.
        std::size_t planner = 0;
        double plannerReady =
            timeline_ == nullptr
                ? replicas_[0].freeAt
                : timeline_->upAfter(0, replicas_[0].freeAt);
        for (std::size_t r = 1; r < replicas_.size(); ++r) {
            const double ready =
                timeline_ == nullptr
                    ? replicas_[r].freeAt
                    : timeline_->upAfter(r, replicas_[r].freeAt);
            if (ready < plannerReady) {
                planner = r;
                plannerReady = ready;
            }
        }
        double now = plannerReady;
        if (faultEra && std::isinf(now)) {
            // Every replica is permanently down: nothing pending can
            // ever be served again. Count the stranded requests as
            // abandoned -- without handing closed-loop clients a
            // next request, which would reissue into the dead fleet
            // forever -- and stop.
            std::size_t stranded = queue.size();
            report.requestsAbandoned += queue.size();
            queue.clear();
            while (!future.empty()) {
                if (retrying.find(future.top().id) == retrying.end())
                    ++report.requestsIssued;
                ++report.requestsAbandoned;
                ++stranded;
                future.pop();
            }
            retrying.clear();
            BF_WARN("serving fleet is permanently down; abandoning ",
                    stranded, " pending requests");
            break;
        }
        if (queue.empty())
            now = std::max(now, future.top().arrivalUs);
        absorb(now);
        ctx.setNow(now);
        if (queue.empty())
            continue; // everything due was shed; advance the clock

        const BatchPlan plan = scheduler->plan(ctx, now);
        BF_ASSERT(!plan.members.empty());
        const unsigned netId = networkId(plan.network);
        unsigned planSamples = 0;
        double dispatch = std::max(plan.dispatchUs, now);
        for (std::size_t i : plan.members) {
            BF_ASSERT(i < queue.size());
            BF_ASSERT(queue[i].network == plan.network);
            planSamples += queue[i].samples;
            dispatch = std::max(dispatch, queue[i].arrivalUs);
        }
        BF_ASSERT(planSamples == plan.samples);
        BF_ASSERT(planSamples <= cap);

        // Route to the free (and up) replica whose platform serves
        // this network cheapest (ties go to the lowest index); with
        // the switch penalty active, a candidate that would have to
        // reload weights bids its reload cost too. Under faults the
        // whole batch slides later when no replica is up and free at
        // the planned departure; a slide to infinity means the fleet
        // died for good mid-plan, so the members are abandoned.
        std::size_t chosen = planner;
        double chosenCost = std::numeric_limits<double>::infinity();
        bool strandedBatch = false;
        for (;;) {
            for (std::size_t r = 0; r < replicas_.size(); ++r) {
                if (replicas_[r].freeAt > dispatch)
                    continue;
                if (timeline_ != nullptr &&
                    !timeline_->upAt(r, dispatch))
                    continue;
                const RunStats &candidate =
                    statsFor(replicas_[r].cls, netId, planSamples);
                double cost = candidate.seconds() * 1e6;
                if (opts_.switchPenaltyUs > 0.0 &&
                    replicas_[r].lastNetId != netId)
                    cost += opts_.switchPenaltyUs;
                if (cost < chosenCost) {
                    chosenCost = cost;
                    chosen = r;
                }
            }
            if (std::isfinite(chosenCost))
                break;
            BF_ASSERT(timeline_ != nullptr);
            double slide = std::numeric_limits<double>::infinity();
            for (std::size_t r = 0; r < replicas_.size(); ++r) {
                slide = std::min(
                    slide,
                    timeline_->upAfter(
                        r, std::max(replicas_[r].freeAt, dispatch)));
            }
            if (std::isinf(slide)) {
                strandedBatch = true;
                break;
            }
            dispatch = slide;
        }
        if (strandedBatch) {
            report.requestsAbandoned += plan.members.size();
            for (std::size_t i : plan.members)
                retrying.erase(queue[i].id);
            eraseMembers(queue, plan.members);
            continue;
        }

        // Dispatch: charge the chosen platform's simulated latency,
        // plus the reload penalty when the replica changes networks
        // (a cold replica's first batch pays it too).
        Replica &replica = replicas_[chosen];
        const RunStats &rs = statsFor(replica.cls, netId, planSamples);
        const double computeUs = rs.seconds() * 1e6;
        const bool switched = opts_.switchPenaltyUs > 0.0 &&
                              replica.lastNetId != netId;
        double latencyUs = computeUs;
        if (switched) {
            latencyUs += opts_.switchPenaltyUs;
            ++report.networkSwitches;
            report.switchPenaltyTotalUs += opts_.switchPenaltyUs;
        }
        replica.lastNetId = netId;
        const double finish = dispatch + latencyUs;

        // Resolve the dispatch against the fault timeline: an
        // outage opening strictly inside (dispatch, finish)
        // destroys the batch at that instant.
        double failAt = std::numeric_limits<double>::infinity();
        if (timeline_ != nullptr) {
            failAt =
                timeline_->nextDownWithin(chosen, dispatch, finish);
        }
        const bool primaryLost = failAt < finish;

        // Hedge: when the primary is still unresolved after the
        // hedge delay, duplicate the batch onto the cheapest other
        // up-and-free replica. The first completion wins; the loser
        // is cancelled at that instant and its burned compute is
        // charged as waste, not busy time.
        bool hedged = false;
        bool hedgeLost = false;
        std::size_t hedgeReplica = 0;
        double hedgeDispatch = 0.0;
        double hedgeFinish = std::numeric_limits<double>::infinity();
        double hedgeFailAt = std::numeric_limits<double>::infinity();
        double hedgeLatencyUs = 0.0;
        double hedgeEnergyJ = 0.0;
        if (faultEra && opts_.retry.hedgingEnabled()) {
            double delay = opts_.retry.hedgeDelayUs;
            if (hedgeOnP99) {
                delay = hedgeP99.count() >= kHedgeWarmup
                            ? opts_.retry.hedgeP99Multiplier *
                                  hedgeP99.value()
                            : -1.0;
            }
            const double outcomeAt = primaryLost ? failAt : finish;
            if (delay >= 0.0 && dispatch + delay < outcomeAt) {
                const double hedgeAt = dispatch + delay;
                double bestCost =
                    std::numeric_limits<double>::infinity();
                for (std::size_t r = 0; r < replicas_.size(); ++r) {
                    if (r == chosen ||
                        replicas_[r].freeAt > hedgeAt)
                        continue;
                    if (timeline_ != nullptr &&
                        !timeline_->upAt(r, hedgeAt))
                        continue;
                    const RunStats &candidate =
                        statsFor(replicas_[r].cls, netId,
                                 planSamples);
                    double cost = candidate.seconds() * 1e6;
                    if (opts_.switchPenaltyUs > 0.0 &&
                        replicas_[r].lastNetId != netId)
                        cost += opts_.switchPenaltyUs;
                    if (cost < bestCost) {
                        bestCost = cost;
                        hedgeReplica = r;
                    }
                }
                if (std::isfinite(bestCost)) {
                    hedged = true;
                    Replica &hr = replicas_[hedgeReplica];
                    const RunStats &hs =
                        statsFor(hr.cls, netId, planSamples);
                    hedgeLatencyUs = hs.seconds() * 1e6;
                    if (opts_.switchPenaltyUs > 0.0 &&
                        hr.lastNetId != netId) {
                        hedgeLatencyUs += opts_.switchPenaltyUs;
                        ++report.networkSwitches;
                        report.switchPenaltyTotalUs +=
                            opts_.switchPenaltyUs;
                    }
                    hr.lastNetId = netId;
                    hedgeDispatch = hedgeAt;
                    hedgeFinish = hedgeAt + hedgeLatencyUs;
                    hedgeEnergyJ = hs.energy().totalJ();
                    if (timeline_ != nullptr) {
                        hedgeFailAt = timeline_->nextDownWithin(
                            hedgeReplica, hedgeAt, hedgeFinish);
                    }
                    hedgeLost = hedgeFailAt < hedgeFinish;
                }
            }
        }

        // First completion wins (the primary wins exact ties).
        const bool hedgeWins = hedged && !hedgeLost &&
                               (primaryLost || hedgeFinish < finish);
        const bool completed = !primaryLost || hedgeWins;
        const double doneAt = hedgeWins ? hedgeFinish : finish;
        const std::size_t serveReplica =
            hedgeWins ? hedgeReplica : chosen;

        // Settle the primary replica: useful compute counts as busy
        // time and energy; destroyed or cancelled compute counts as
        // waste and charges nothing.
        if (primaryLost) {
            replica.freeAt = timeline_->upAfter(chosen, failAt);
            replica.wastedUs += failAt - dispatch;
            replica.lostBatches += 1;
            ++report.lostBatches;
        } else if (hedgeWins) {
            replica.freeAt = doneAt;
            replica.wastedUs += doneAt - dispatch;
        } else {
            replica.freeAt = finish;
            replica.batches += 1;
            replica.samples += planSamples;
            replica.busyUs += latencyUs;
            replica.energyJ += rs.energy().totalJ();
        }

        // Settle the hedge replica.
        bool hedgeDied = false;
        if (hedged) {
            Replica &hr = replicas_[hedgeReplica];
            if (hedgeWins) {
                hr.freeAt = hedgeFinish;
                hr.batches += 1;
                hr.samples += planSamples;
                hr.busyUs += hedgeLatencyUs;
                hr.energyJ += hedgeEnergyJ;
            } else if (hedgeLost &&
                       (!completed || hedgeFailAt <= doneAt)) {
                // Its replica died under it before the primary
                // completed.
                hedgeDied = true;
                hr.freeAt =
                    timeline_->upAfter(hedgeReplica, hedgeFailAt);
                hr.wastedUs += hedgeFailAt - hedgeDispatch;
                hr.lostBatches += 1;
                ++report.lostBatches;
            } else {
                // Cancelled when the primary completed first.
                hr.freeAt = doneAt;
                hr.wastedUs += doneAt - hedgeDispatch;
            }
        }

        if (completed) {
            report.energyJ +=
                hedgeWins ? hedgeEnergyJ : rs.energy().totalJ();
            report.totalSamples += planSamples;
            report.makespanUs = std::max(report.makespanUs, doneAt);
            report.batchCount += 1;
            if (hedgeOnP99) {
                hedgeP99.add(doneAt - (hedgeWins ? hedgeDispatch
                                                 : dispatch));
            }
            if (opts_.retainRecords) {
                BatchRecord batch;
                batch.network = plan.network;
                batch.samples = planSamples;
                batch.requests = plan.members.size();
                batch.dispatchUs =
                    hedgeWins ? hedgeDispatch : dispatch;
                batch.latencyUs =
                    hedgeWins ? hedgeLatencyUs : latencyUs;
                batch.replica = static_cast<unsigned>(serveReplica);
                report.batches.push_back(std::move(batch));
            }
        }

        std::vector<InferenceRequest> injected;
        if (completed) {
            for (std::size_t i : plan.members) {
                RequestRecord rec;
                rec.request = queue[i];
                rec.dispatchUs = dispatch;
                rec.finishUs = doneAt;
                rec.batchSamples = planSamples;
                rec.replica = static_cast<unsigned>(serveReplica);
                if (faultEra) {
                    const auto it = retrying.find(rec.request.id);
                    if (it != retrying.end()) {
                        // A recovered request's latency spans every
                        // attempt since its first arrival.
                        rec.request.arrivalUs =
                            it->second.originalArrivalUs;
                        rec.attempts = it->second.attempts + 1;
                        rec.recovered = true;
                        ++report.requestsRecovered;
                        retrying.erase(it);
                    }
                    rec.hedged = hedged;
                    if (hedged) {
                        ++report.hedgesIssued;
                        if (hedgeWins)
                            ++report.hedgesWon;
                        else if (hedgeDied)
                            ++report.hedgesLost;
                        else
                            ++report.hedgesCancelled;
                    }
                }
                rec.deadlineMissed =
                    rec.request.deadlineUs > 0.0 &&
                    dispatch > rec.request.deadlineUs;
                if (rec.deadlineMissed)
                    ++report.deadlineMisses;
                report.requestCount += 1;
                if (opts_.streamingStats) {
                    report.latencyStream.add(rec.latencyUs());
                    report.queueStream.add(rec.queueUs());
                } else {
                    report.latencySamples.push_back(rec.latencyUs());
                    report.queueSamples.push_back(rec.queueUs());
                }
                onFinish(rec, injected);
                if (opts_.retainRecords)
                    report.requests.push_back(std::move(rec));
            }
        } else {
            // The batch is gone: every member either re-enters the
            // queue after its backoff or is abandoned when its
            // attempts or the global retry budget run out.
            const double lostAt =
                hedged ? std::max(failAt, hedgeFailAt) : failAt;
            for (std::size_t i : plan.members) {
                InferenceRequest req = queue[i];
                const auto emplaced = retrying.try_emplace(req.id);
                RetryState &st = emplaced.first->second;
                if (emplaced.second)
                    st.originalArrivalUs = req.arrivalUs;
                st.attempts += 1;
                ++report.requestLossEvents;
                if (hedged) {
                    ++report.hedgesIssued;
                    ++report.hedgesLost;
                }
                const bool canRetry =
                    opts_.retry.maxAttempts > st.attempts &&
                    (opts_.retry.retryBudget == 0 ||
                     report.retriesIssued < opts_.retry.retryBudget);
                if (canRetry) {
                    ++report.retriesIssued;
                    double backoff =
                        opts_.retry.backoffBaseUs *
                        std::ldexp(1.0,
                                   static_cast<int>(st.attempts) - 1);
                    if (opts_.retry.jitterFrac > 0.0) {
                        backoff *= 1.0 + opts_.retry.jitterFrac *
                                             retryJitter.nextDouble();
                    }
                    req.arrivalUs = lostAt + backoff;
                    injected.push_back(std::move(req));
                } else {
                    ++report.requestsAbandoned;
                    retrying.erase(req.id);
                    // A closed-loop client whose request died gives
                    // up here and issues its next one.
                    onShed(req, lostAt, injected);
                }
            }
        }
        for (auto &req : injected)
            future.push(std::move(req));

        eraseMembers(queue, plan.members);
    }

    std::stable_sort(report.requests.begin(), report.requests.end(),
                     [](const RequestRecord &a, const RequestRecord &b) {
                         return a.request.id < b.request.id;
                     });
    report.firstArrivalUs =
        std::isfinite(firstArrival) ? firstArrival : 0.0;
    const double utilizationWindowUs = report.throughputWindowUs();
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
        const Replica &replica = replicas_[r];
        ReplicaUsage usage;
        usage.platform = classes_[replica.cls].spec.name;
        usage.batches = replica.batches;
        usage.samples = replica.samples;
        usage.busyUs = replica.busyUs;
        usage.utilization = utilizationWindowUs > 0.0
                                ? replica.busyUs / utilizationWindowUs
                                : 0.0;
        usage.energyJ = replica.energyJ;
        if (faultEra) {
            usage.lostBatches = replica.lostBatches;
            usage.wastedUs = replica.wastedUs;
            if (timeline_ != nullptr)
                usage.downUs =
                    timeline_->downUsWithin(r, report.makespanUs);
            report.fleetDownUs += usage.downUs;
        }
        report.replicas.push_back(std::move(usage));
    }
    if (timeline_ != nullptr) {
        report.lastRecoveryUs =
            timeline_->lastRecoveryBefore(report.makespanUs);
        report.drainAfterRecoveryUs =
            report.lastRecoveryUs > 0.0
                ? report.makespanUs - report.lastRecoveryUs
                : 0.0;
    }
    timeline_ = nullptr;
    report.distinctBatchShapes = memoSize() - shapesBefore;
    report.compiles = cache_->compileCount() +
                      cache_->storeHitCount() - compilesBefore;
    report.cacheHits = cache_->hitCount() - hitsBefore;
    return report;
}

ServeReport
ServingEngine::run(const std::vector<InferenceRequest> &trace)
{
    for (std::size_t i = 1; i < trace.size(); ++i) {
        if (trace[i].arrivalUs < trace[i - 1].arrivalUs) {
            BF_FATAL("open-loop trace is not arrival-ordered at "
                     "request ",
                     i);
        }
    }
    std::vector<std::string> networks;
    for (const auto &req : trace)
        networks.push_back(req.network);
    ServeReport report = runLoop(
        trace, networks,
        [](const RequestRecord &, std::vector<InferenceRequest> &) {},
        [](const InferenceRequest &, double,
           std::vector<InferenceRequest> &) {});
    report.mode = "open-loop";
    return report;
}

ServeReport
ServingEngine::runClosedLoop(const ClosedLoopSpec &spec)
{
    if (spec.clients == 0)
        BF_FATAL("closed loop needs at least one client");
    if (spec.samples == 0)
        BF_FATAL("closed loop needs at least one sample per request");
    if (opts_.maxQueueDepth > 0) {
        BF_FATAL("closed-loop runs cannot shed by queue depth: a "
                 "shed client would reissue at the same instant and "
                 "shed forever (use shedUnmeetable or an open-loop "
                 "trace)");
    }

    std::vector<std::string> networks = spec.networks;
    if (networks.empty()) {
        for (const auto &bench : catalog_)
            networks.push_back(bench.name);
    }

    Prng prng(spec.seed);
    std::uint64_t nextId = 0;
    std::size_t issued = 0;
    const auto makeRequest = [&](double arrivalUs) {
        InferenceRequest req;
        req.id = nextId++;
        req.network = networks[prng.below(networks.size())];
        req.samples = spec.samples;
        req.arrivalUs = arrivalUs;
        if (spec.deadlineSlackUs > 0.0)
            req.deadlineUs = arrivalUs + spec.deadlineSlackUs;
        ++issued;
        return req;
    };

    std::vector<InferenceRequest> initial;
    const std::size_t starters =
        std::min<std::size_t>(spec.clients, spec.requests);
    for (std::size_t c = 0; c < starters; ++c)
        initial.push_back(makeRequest(0.0));

    // Each completion hands its client the next request (arrival =
    // completion time) until the quota is issued; a shed hands the
    // shed client its next request at the shed time the same way.
    // The whole network mix prewarms, not just the starters' random
    // draws.
    ServeReport report = runLoop(
        std::move(initial), networks,
        [&](const RequestRecord &rec,
            std::vector<InferenceRequest> &out) {
            if (issued < spec.requests)
                out.push_back(makeRequest(rec.finishUs));
        },
        [&](const InferenceRequest &, double shedAtUs,
            std::vector<InferenceRequest> &out) {
            if (issued < spec.requests)
                out.push_back(makeRequest(shedAtUs));
        });
    report.mode = "closed-loop";
    return report;
}

} // namespace serve
} // namespace bitfusion
