/**
 * @file
 * The virtual-clock event loop behind the serving engine: batch
 * selection, the batching window, memoized platform runs, and the
 * report aggregation.
 */

#include "src/serve/serving_engine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <set>

#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/common/prng.h"
#include "src/core/artifact_cache.h"
#include "src/runner/parallel_for.h"

namespace bitfusion {
namespace serve {

namespace {

/** Min-heap ordering of future arrivals by (arrival, id). */
struct ArrivalAfter
{
    bool
    operator()(const InferenceRequest &a,
               const InferenceRequest &b) const
    {
        if (a.arrivalUs != b.arrivalUs)
            return a.arrivalUs > b.arrivalUs;
        return a.id > b.id;
    }
};

json::Value
percentilesJson(const Percentiles &p)
{
    return json::Value::object()
        .set("p50", p.p50)
        .set("p95", p.p95)
        .set("p99", p.p99)
        .set("mean", p.mean)
        .set("max", p.max);
}

} // namespace

// ---------------------------------------------------------- Percentiles

Percentiles
percentiles(std::vector<double> values)
{
    Percentiles p;
    if (values.empty())
        return p;
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    const auto rank = [&](double q) {
        // Nearest-rank: the smallest value with at least q% of the
        // sample at or below it.
        std::size_t idx = static_cast<std::size_t>(
            std::ceil(q / 100.0 * static_cast<double>(n)));
        idx = std::max<std::size_t>(idx, 1);
        return values[std::min(idx, n) - 1];
    };
    p.p50 = rank(50.0);
    p.p95 = rank(95.0);
    p.p99 = rank(99.0);
    double sum = 0.0;
    for (double v : values)
        sum += v;
    p.mean = sum / static_cast<double>(n);
    p.max = values.back();
    return p;
}

// ---------------------------------------------------------- ServeReport

Percentiles
ServeReport::latencyUs() const
{
    std::vector<double> values;
    values.reserve(requests.size());
    for (const auto &r : requests)
        values.push_back(r.latencyUs());
    return percentiles(std::move(values));
}

Percentiles
ServeReport::queueUs() const
{
    std::vector<double> values;
    values.reserve(requests.size());
    for (const auto &r : requests)
        values.push_back(r.queueUs());
    return percentiles(std::move(values));
}

double
ServeReport::requestsPerSec() const
{
    if (makespanUs <= 0.0)
        return 0.0;
    return static_cast<double>(requests.size()) / (makespanUs * 1e-6);
}

double
ServeReport::samplesPerSec() const
{
    if (makespanUs <= 0.0)
        return 0.0;
    return static_cast<double>(totalSamples) / (makespanUs * 1e-6);
}

double
ServeReport::batchFill() const
{
    if (batches.empty() || maxBatch == 0)
        return 0.0;
    return static_cast<double>(totalSamples) /
           (static_cast<double>(batches.size()) *
            static_cast<double>(maxBatch));
}

std::string
ServeReport::json(bool per_request) const
{
    json::Value doc = json::Value::object();
    doc.set("serve", mode)
        .set("platform", platform)
        .set("timing", toString(timing))
        .set("max_batch", maxBatch)
        .set("max_wait_us", maxWaitUs)
        .set("requests", static_cast<std::uint64_t>(requests.size()))
        .set("samples", totalSamples)
        .set("batches", static_cast<std::uint64_t>(batches.size()))
        .set("batch_fill", batchFill())
        .set("distinct_batch_shapes",
             static_cast<std::uint64_t>(distinctBatchShapes))
        .set("makespan_us", makespanUs)
        .set("requests_per_sec", requestsPerSec())
        .set("samples_per_sec", samplesPerSec())
        .set("latency_us", percentilesJson(latencyUs()))
        .set("queue_us", percentilesJson(queueUs()))
        .set("deadline_misses",
             static_cast<std::uint64_t>(deadlineMisses))
        .set("energy_j", energyJ)
        .set("energy_per_sample_j",
             totalSamples != 0
                 ? energyJ / static_cast<double>(totalSamples)
                 : 0.0)
        .set("cache", json::Value::object()
                          .set("compiles",
                               static_cast<std::uint64_t>(compiles))
                          .set("hits", static_cast<std::uint64_t>(
                                           cacheHits)));

    if (per_request) {
        json::Value recs = json::Value::array();
        for (const auto &r : requests) {
            recs.push(json::Value::object()
                          .set("id", r.request.id)
                          .set("network", r.request.network)
                          .set("samples", r.request.samples)
                          .set("arrival_us", r.request.arrivalUs)
                          .set("dispatch_us", r.dispatchUs)
                          .set("finish_us", r.finishUs)
                          .set("batch_samples", r.batchSamples)
                          .set("deadline_missed", r.deadlineMissed));
        }
        doc.set("request_records", std::move(recs));
    }
    return doc.dump(2);
}

// -------------------------------------------------------- ServingEngine

ServingEngine::ServingEngine(PlatformSpec spec, ServeOptions opts)
    : spec_(std::move(spec)), opts_(opts)
{
    cache_ = opts_.cache != nullptr ? opts_.cache
                                    : &ArtifactCache::process();
    for (const auto &bench : zoo::all())
        catalog_.push_back(bench);
}

void
ServingEngine::setCatalog(std::vector<zoo::Benchmark> catalog)
{
    if (catalog.empty())
        BF_FATAL("serving catalog must not be empty");
    catalog_ = std::move(catalog);
    memo_.clear();
}

unsigned
ServingEngine::maxBatch() const
{
    return opts_.maxBatch != 0 ? opts_.maxBatch
                               : spec_.effectiveBatch();
}

const zoo::Benchmark &
ServingEngine::benchmark(const std::string &name) const
{
    for (const auto &bench : catalog_) {
        if (bench.name == name)
            return bench;
    }
    BF_FATAL("serving catalog has no network '", name, "'");
}

const Network &
ServingEngine::variant(const zoo::Benchmark &bench) const
{
    return spec_.runsQuantized ? bench.quantized : bench.baseline;
}

const Platform &
ServingEngine::platformFor(unsigned batch)
{
    auto it = platforms_.find(batch);
    if (it == platforms_.end()) {
        PlatformSpec spec = spec_;
        spec.batch = batch;
        it = platforms_
                 .emplace(batch, PlatformRegistry::builtin().build(spec))
                 .first;
    }
    return *it->second;
}

const RunStats &
ServingEngine::statsFor(const std::string &network, unsigned batch)
{
    const auto key = std::make_pair(network, batch);
    auto it = memo_.find(key);
    if (it != memo_.end())
        return it->second;

    const Platform &platform = platformFor(batch);
    const Network &net = variant(benchmark(network));
    const ArtifactCache::Outcome out = cache_->get(platform, net);
    RunOptions runOpts;
    runOpts.timing = opts_.timing;
    runOpts.artifact = out.artifact.get();
    return memo_.emplace(key, platform.run(net, runOpts)).first->second;
}

void
ServingEngine::precompile(const std::vector<std::string> &networks)
{
    std::set<std::string> names(networks.begin(), networks.end());

    // Resolve every named network (fatal on unknown) and build the
    // full-batch platform before fanning out; the workers then only
    // touch the thread-safe artifact cache.
    std::vector<const Network *> nets;
    for (const auto &name : names)
        nets.push_back(&variant(benchmark(name)));
    const Platform &platform = platformFor(maxBatch());

    parallelFor(nets.size(),
                resolveThreads(opts_.threads, nets.size()),
                [&](std::size_t i) { cache_->get(platform, *nets[i]); });
}

template <typename OnFinish>
ServeReport
ServingEngine::runLoop(std::vector<InferenceRequest> initial,
                       const std::vector<std::string> &warmNetworks,
                       OnFinish &&onFinish)
{
    const unsigned cap = maxBatch();
    BF_ASSERT(cap > 0);

    const std::size_t compilesBefore = cache_->compileCount();
    const std::size_t hitsBefore = cache_->hitCount();
    const std::size_t shapesBefore = memo_.size();
    precompile(warmNetworks);

    ServeReport report;
    report.platform = spec_.name;
    report.timing = opts_.timing;
    report.maxBatch = cap;
    report.maxWaitUs = opts_.maxWaitUs;

    std::priority_queue<InferenceRequest,
                        std::vector<InferenceRequest>, ArrivalAfter>
        future(ArrivalAfter{}, std::move(initial));
    std::deque<InferenceRequest> queue;
    double freeAt = 0.0;

    const auto validate = [&](const InferenceRequest &req) {
        if (req.samples == 0 || req.samples > cap) {
            BF_FATAL("request ", req.id, " has ", req.samples,
                     " samples; the engine coalesces whole requests "
                     "up to max batch ",
                     cap);
        }
    };
    const auto absorb = [&](double now) {
        while (!future.empty() && future.top().arrivalUs <= now) {
            validate(future.top());
            queue.push_back(future.top());
            future.pop();
        }
    };

    while (!queue.empty() || !future.empty()) {
        double now = freeAt;
        if (queue.empty())
            now = std::max(freeAt, future.top().arrivalUs);
        absorb(now);

        // Head-of-line batch selection: the oldest request picks the
        // network; arrived requests of that network join in FIFO
        // order while the whole request still fits.
        const InferenceRequest head = queue.front();
        unsigned samples = 0;
        std::vector<std::size_t> members;
        for (std::size_t i = 0; i < queue.size() && samples < cap;
             ++i) {
            const InferenceRequest &r = queue[i];
            if (r.network == head.network &&
                samples + r.samples <= cap) {
                members.push_back(i);
                samples += r.samples;
            }
        }

        // Batching window: an unfilled batch may wait for more
        // arrivals until the timer set at the head's arrival fires,
        // but never past a member's deadline; it dispatches early
        // the moment it fills.
        double dispatch = now;
        if (samples < cap && opts_.maxWaitUs > 0.0) {
            double windowEnd = head.arrivalUs + opts_.maxWaitUs;
            for (std::size_t i : members) {
                if (queue[i].deadlineUs > 0.0)
                    windowEnd = std::min(windowEnd, queue[i].deadlineUs);
            }
            windowEnd = std::max(windowEnd, now);
            const bool waited = windowEnd > now;
            while (samples < cap && !future.empty() &&
                   future.top().arrivalUs <= windowEnd) {
                const InferenceRequest next = future.top();
                future.pop();
                validate(next);
                queue.push_back(next);
                if (next.network == head.network &&
                    samples + next.samples <= cap) {
                    members.push_back(queue.size() - 1);
                    samples += next.samples;
                    dispatch = std::max(dispatch, next.arrivalUs);
                    if (next.deadlineUs > 0.0) {
                        windowEnd = std::min(
                            windowEnd,
                            std::max(next.deadlineUs, dispatch));
                    }
                }
            }
            if (samples < cap && waited)
                dispatch = windowEnd; // the batching timer fires
        }

        // Dispatch: charge the platform's simulated batch latency.
        const RunStats &rs = statsFor(head.network, samples);
        const double latencyUs = rs.seconds() * 1e6;
        const double finish = dispatch + latencyUs;
        freeAt = finish;
        report.energyJ += rs.energy().totalJ();
        report.totalSamples += samples;
        report.makespanUs = finish;
        report.batches.push_back(
            {head.network, samples, members.size(), dispatch,
             latencyUs});

        std::vector<InferenceRequest> injected;
        for (std::size_t i : members) {
            RequestRecord rec;
            rec.request = queue[i];
            rec.dispatchUs = dispatch;
            rec.finishUs = finish;
            rec.batchSamples = samples;
            rec.deadlineMissed = rec.request.deadlineUs > 0.0 &&
                                 dispatch > rec.request.deadlineUs;
            if (rec.deadlineMissed)
                ++report.deadlineMisses;
            onFinish(rec, injected);
            report.requests.push_back(std::move(rec));
        }
        for (auto &req : injected)
            future.push(std::move(req));
        // Compact the queue in one stable pass (members is ascending).
        std::deque<InferenceRequest> rest;
        std::size_t nextMember = 0;
        for (std::size_t i = 0; i < queue.size(); ++i) {
            if (nextMember < members.size() &&
                members[nextMember] == i) {
                ++nextMember;
                continue;
            }
            rest.push_back(std::move(queue[i]));
        }
        queue.swap(rest);
    }

    std::stable_sort(report.requests.begin(), report.requests.end(),
                     [](const RequestRecord &a, const RequestRecord &b) {
                         return a.request.id < b.request.id;
                     });
    report.distinctBatchShapes = memo_.size() - shapesBefore;
    report.compiles = cache_->compileCount() - compilesBefore;
    report.cacheHits = cache_->hitCount() - hitsBefore;
    return report;
}

ServeReport
ServingEngine::run(const std::vector<InferenceRequest> &trace)
{
    for (std::size_t i = 1; i < trace.size(); ++i) {
        if (trace[i].arrivalUs < trace[i - 1].arrivalUs) {
            BF_FATAL("open-loop trace is not arrival-ordered at "
                     "request ",
                     i);
        }
    }
    std::vector<std::string> networks;
    for (const auto &req : trace)
        networks.push_back(req.network);
    ServeReport report = runLoop(
        trace, networks,
        [](const RequestRecord &, std::vector<InferenceRequest> &) {});
    report.mode = "open-loop";
    return report;
}

ServeReport
ServingEngine::runClosedLoop(const ClosedLoopSpec &spec)
{
    if (spec.clients == 0)
        BF_FATAL("closed loop needs at least one client");
    if (spec.samples == 0)
        BF_FATAL("closed loop needs at least one sample per request");

    std::vector<std::string> networks = spec.networks;
    if (networks.empty()) {
        for (const auto &bench : catalog_)
            networks.push_back(bench.name);
    }

    Prng prng(spec.seed);
    std::uint64_t nextId = 0;
    std::size_t issued = 0;
    const auto makeRequest = [&](double arrivalUs) {
        InferenceRequest req;
        req.id = nextId++;
        req.network = networks[prng.below(networks.size())];
        req.samples = spec.samples;
        req.arrivalUs = arrivalUs;
        ++issued;
        return req;
    };

    std::vector<InferenceRequest> initial;
    const std::size_t starters =
        std::min<std::size_t>(spec.clients, spec.requests);
    for (std::size_t c = 0; c < starters; ++c)
        initial.push_back(makeRequest(0.0));

    // Each completion hands its client the next request (arrival =
    // completion time) until the quota is issued. The whole network
    // mix prewarms, not just the starters' random draws.
    ServeReport report = runLoop(
        std::move(initial), networks,
        [&](const RequestRecord &rec,
            std::vector<InferenceRequest> &out) {
            if (issued < spec.requests)
                out.push_back(makeRequest(rec.finishUs));
        });
    report.mode = "closed-loop";
    return report;
}

} // namespace serve
} // namespace bitfusion
